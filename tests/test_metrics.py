"""Unit + property tests for :mod:`repro.metrics`.

The load-bearing properties:

- :class:`ExactSum` reads the same value for any accumulation order;
- fixed-bucket quantile estimates land within one bucket width of the
  exact nearest-rank quantile;
- histogram merge is lossless (shards == single pass);
- the JSONL export round-trips and the digest keys on body lines only;
- the flight recorder's ring is bounded and its dumps deterministic;
- the null objects are inert shared singletons.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    NULL_FLIGHT_RECORDER,
    NULL_REGISTRY,
    ExactSum,
    FixedBucketHistogram,
    FlightRecorder,
    MetricsRegistry,
    bucket_quantile,
    linear_buckets,
    log_buckets,
    read_metrics_jsonl,
    registry_digest,
    render_top,
    series_rows,
    to_openmetrics,
    write_flight_jsonl,
    write_metrics_jsonl,
)
from repro.obs import FrameTrace, StageStats, summarize, summarize_pooled

finite_small = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False, width=32
)
finite_wide = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=32
)


class TestExactSum:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(finite_wide, min_size=1, max_size=60))
    def test_order_independent(self, values):
        orders = [values, list(reversed(values)), sorted(values), sorted(values, reverse=True)]
        results = {ExactSum(order).value for order in orders}
        assert len(results) == 1
        assert results.pop() == math.fsum(values)

    def test_merge_equals_single_accumulator(self):
        a, b = ExactSum([0.1] * 7), ExactSum([1e16, 1.0, -1e16])
        a.merge(b)
        assert a.value == math.fsum([0.1] * 7 + [1e16, 1.0, -1e16])


class TestBuckets:
    def test_linear_edges(self):
        assert linear_buckets(0.0, 1.0, 5) == (0.0, 0.25, 0.5, 0.75, 1.0)
        with pytest.raises(ValueError):
            linear_buckets(1.0, 0.0, 5)

    def test_log_edges_cover_hi(self):
        edges = log_buckets(1e-3, 1.0, per_decade=2)
        assert edges[0] == 1e-3 and edges[-1] >= 1.0
        assert all(b > a for a, b in zip(edges, edges[1:]))


class TestBucketQuantile:
    EDGES = linear_buckets(0.0, 10.0, 21)  # bucket width 0.5
    WIDTH = 0.5

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(finite_small, min_size=1, max_size=200),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_within_one_bucket_width_of_exact(self, values, q):
        hist = FixedBucketHistogram(self.EDGES)
        for v in values:
            assert hist.observe(v)
        estimate = hist.quantile(q)
        rank_up = min(len(values), math.ceil(q * (len(values) - 1) + 1.0))
        exact = sorted(values)[rank_up - 1]
        assert abs(estimate - exact) <= self.WIDTH + 1e-9
        assert hist.min - 1e-9 <= estimate <= hist.max + 1e-9

    def test_empty_distribution_is_zero(self):
        assert bucket_quantile(self.EDGES, [0] * (len(self.EDGES) + 1), 0.5) == 0.0
        assert FixedBucketHistogram(self.EDGES).quantile(0.9) == 0.0

    def test_open_buckets_clamped_by_min_max(self):
        hist = FixedBucketHistogram(self.EDGES)
        for v in (-3.0, -3.0, 42.0):  # under/overflow only
            hist.observe(v)
        # Open buckets are bounded by the recorded min/max, so estimates
        # stay inside [min, edges[0]] / [edges[-1], max].
        assert -3.0 <= hist.quantile(0.0) <= self.EDGES[0]
        assert self.EDGES[-1] <= hist.quantile(1.0) <= 42.0
        assert hist.quantile(1.0) == 42.0  # rank falls at the recorded max


class TestHistogramMerge:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(finite_small, min_size=1, max_size=80), st.integers(1, 5))
    def test_sharded_merge_is_lossless(self, values, k):
        edges = linear_buckets(0.0, 10.0, 11)
        whole = FixedBucketHistogram(edges)
        for v in values:
            whole.observe(v)
        merged = FixedBucketHistogram(edges)
        for i in range(k):
            shard = FixedBucketHistogram(edges)
            for v in values[i::k]:
                shard.observe(v)
            merged.merge(shard)
        assert merged.counts == whole.counts
        assert merged.count == whole.count
        assert merged.min == whole.min and merged.max == whole.max
        assert merged.sum == whole.sum  # ExactSum: bit-identical, not approx

    def test_mismatched_edges_refuse_to_merge(self):
        a = FixedBucketHistogram(linear_buckets(0.0, 1.0, 3))
        b = FixedBucketHistogram(linear_buckets(0.0, 2.0, 3))
        with pytest.raises(ValueError, match="different edges"):
            a.merge(b)

    def test_non_finite_observations_skipped(self):
        hist = FixedBucketHistogram(linear_buckets(0.0, 1.0, 3))
        assert not hist.observe(float("nan"))
        assert not hist.observe(float("inf"))
        assert hist.count == 0


class TestRegistry:
    def test_window_index_floors_virtual_time(self):
        reg = MetricsRegistry(window=0.25)
        assert [reg.window_index(t) for t in (0.0, 0.24, 0.25, 1.0)] == [0, 0, 1, 4]

    def test_counter_windows_accumulate(self):
        reg = MetricsRegistry(window=1.0)
        c = reg.counter("frames")
        for t in (0.1, 0.2, 1.5):
            c.inc(2.0, at=t)
        snap = reg.snapshot()
        windows = snap["instruments"][0]["series"][0]["windows"]
        assert [(w["index"], w["count"], w["sum"]) for w in windows] == [(0, 2, 4.0), (1, 1, 2.0)]

    def test_gauge_last_breaks_ties_deterministically(self):
        reg = MetricsRegistry(window=1.0)
        g = reg.gauge("depth")
        g.set(3.0, at=0.5)
        g.set(1.0, at=0.5)  # same stamp: lexicographically greatest (at, value) wins
        win = reg.snapshot()["instruments"][0]["series"][0]["windows"][0]
        assert win["last"] == 3.0 and win["min"] == 1.0 and win["max"] == 3.0

    def test_labels_create_sorted_series(self):
        reg = MetricsRegistry()
        c = reg.counter("outcomes")
        c.labels(status="dropped").inc(1.0, at=0.0)
        c.labels(status="delivered").inc(1.0, at=0.0)
        labels = [s["labels"] for s in reg.snapshot()["instruments"][0]["series"]]
        assert labels == [{}, {"status": "delivered"}, {"status": "dropped"}]

    def test_instrument_lookup_idempotent_and_kind_checked(self):
        reg = MetricsRegistry()
        assert reg.counter("n") is reg.counter("n")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("n")
        reg.histogram("h", buckets=(0.0, 1.0))
        with pytest.raises(ValueError, match="different buckets"):
            reg.histogram("h", buckets=(0.0, 2.0))

    def test_non_finite_samples_skipped(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(float("nan"), at=0.0)
        reg.gauge("g").set(1.0, at=float("inf"))
        snap = reg.snapshot()
        assert all(not s["windows"] for i in snap["instruments"] for s in i["series"])

    def test_histogram_pooled_merges_all_windows(self):
        reg = MetricsRegistry(window=0.5)
        h = reg.histogram("lat", buckets=linear_buckets(0.0, 2.0, 5))
        for t, v in ((0.1, 0.2), (0.6, 1.2), (1.4, 1.9)):
            h.observe(v, at=t)
        pooled = h.labels().pooled()
        assert pooled.count == 3 and pooled.min == 0.2 and pooled.max == 1.9


class TestNullObjects:
    def test_shared_inert_singletons(self):
        c = NULL_REGISTRY.counter("anything")
        assert c is NULL_REGISTRY.histogram("other")
        assert c.labels(status="x") is c
        c.inc(1.0, at=0.0)
        c.set(1.0, at=0.0)
        c.observe(1.0, at=0.0)
        assert not NULL_REGISTRY.enabled and NULL_REGISTRY.instruments() == []

    def test_null_digest_matches_empty_registry(self):
        assert NULL_REGISTRY.digest() == MetricsRegistry().digest()

    def test_null_flight_recorder_is_inert(self):
        NULL_FLIGHT_RECORDER.record("submit", 0.0, frame=1)
        assert NULL_FLIGHT_RECORDER.trigger("x", 0.0) == {}
        assert not NULL_FLIGHT_RECORDER.enabled
        assert NULL_FLIGHT_RECORDER.dumps == []


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry(window=0.25, meta={"run": "test"})
    c = reg.counter("frames", help="frames seen")
    g = reg.gauge("depth")
    h = reg.histogram("lat", buckets=linear_buckets(0.0, 1.0, 5), unit="s")
    for i in range(10):
        t = i * 0.1
        c.labels(status="ok" if i % 2 else "bad").inc(1.0, at=t)
        g.set(float(i % 3), at=t)
        h.observe(0.1 * i % 1.0, at=t)
    return reg


class TestExport:
    def test_jsonl_round_trip_preserves_pooled_histogram(self, tmp_path):
        reg = _populated_registry()
        path = write_metrics_jsonl(tmp_path / "m.jsonl", reg)
        doc = read_metrics_jsonl(path)
        assert doc.meta == {"run": "test"} and doc.window == 0.25
        live = reg.histogram("lat", buckets=linear_buckets(0.0, 1.0, 5)).labels().pooled()
        parsed = doc.pooled_histogram("lat", labels={})
        assert parsed.counts == live.counts and parsed.count == live.count
        assert parsed.quantile(0.95) == live.quantile(0.95)

    def test_digest_ignores_meta_but_not_body(self):
        reg = _populated_registry()
        before = registry_digest(reg)
        reg.meta["wall_clock"] = "2026-08-08T12:00:00"
        assert registry_digest(reg) == before
        reg.counter("frames").labels(status="ok").inc(1.0, at=5.0)
        assert registry_digest(reg) != before

    def test_openmetrics_rendering(self):
        text = to_openmetrics(_populated_registry())
        assert "# TYPE frames counter" in text
        assert 'frames_total{status="ok"}' in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="1.0"}' in text and text.rstrip().endswith("# EOF")
        assert "# TYPE depth gauge" in text

    def test_jsonl_body_lines_are_canonical_json(self, tmp_path):
        path = write_metrics_jsonl(tmp_path / "m.jsonl", _populated_registry())
        lines = path.read_text().splitlines()
        assert all(json.loads(line) is not None for line in lines)
        assert "meta" in json.loads(lines[0])


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        rec = FlightRecorder(capacity=8)
        for i in range(20):
            rec.record("submit", i * 0.1, frame=i)
        assert rec.recorded == 20 and len(rec.events) == 8
        assert rec.events[0].fields == (("frame", 12),)

    def test_trigger_snapshots_ring_into_dump(self):
        rec = FlightRecorder(capacity=4)
        rec.record("submit", 0.0, frame=0)
        dump = rec.trigger("deadline-burst", 0.5, late=3)
        assert dump["reason"] == "deadline-burst"
        # the trigger event itself is part of the post-mortem
        assert [e["kind"] for e in dump["events"]] == ["submit", "trigger"]

    def test_dump_digest_deterministic_and_meta_free(self, tmp_path):
        def build():
            rec = FlightRecorder(capacity=4)
            for i in range(6):
                rec.record("seal", i * 0.25, frame=i, status="delivered")
            rec.trigger("queue-saturation", 1.5, streak=8)
            return rec

        a, b = build(), build()
        assert a.digest() == b.digest()
        pa = write_flight_jsonl(tmp_path / "a.jsonl", a)
        pb = write_flight_jsonl(tmp_path / "b.jsonl", b)
        assert pa.read_text() == pb.read_text()

    def test_max_dumps_evicts_oldest(self):
        rec = FlightRecorder(capacity=2, max_dumps=2)
        for i in range(4):
            rec.trigger(f"r{i}", float(i))
        assert [d["reason"] for d in rec.dumps] == ["r2", "r3"]

    @pytest.mark.parametrize(
        "kwargs",
        [dict(capacity=0), dict(deadline_burst=0), dict(deadline_burst=9, burst_window=8),
         dict(saturation_burst=0)],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            FlightRecorder(**kwargs)


class TestTopRendering:
    def test_series_rows_and_render(self):
        reg = _populated_registry()
        rows = series_rows(reg.snapshot(), width=16)
        assert {r["kind"] for r in rows} == {"counter", "gauge", "histogram"}
        hist_row = next(r for r in rows if r["kind"] == "histogram")
        assert {"p50", "p95", "p99"} <= set(hist_row)
        text = render_top(reg.snapshot(), flight=FlightRecorder().snapshot())
        assert "frames{status=ok}" in text and "flight recorder: armed" in text

    def test_width_clips_to_tail(self):
        reg = MetricsRegistry(window=0.1)
        c = reg.counter("n")
        for i in range(50):
            c.inc(1.0, at=i * 0.1)
        (row,) = series_rows(reg.snapshot(), width=8)
        assert len(row["spark"]) == 8


class TestPooledTraceSummary:
    """Satellite: the bounded-memory path in repro.obs.aggregate."""

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=1e-5, max_value=50.0, allow_nan=False,
                              allow_infinity=False),
                    min_size=1, max_size=80))
    def test_pooled_summary_tracks_exact(self, durations):
        frames = [
            FrameTrace(index=i, spans={"encode": float(d)}, counters={})
            for i, d in enumerate(durations)
        ]
        exact = summarize(frames).spans["encode"]
        pooled = summarize_pooled(iter(frames)).spans["encode"]
        assert pooled.count == exact.count
        assert pooled.total == pytest.approx(exact.total, rel=1e-12)
        # The pooled quantile tracks the exact *nearest-rank* quantile to
        # within one bucket of the log grid (8/decade -> <=34% relative).
        ordered = sorted(float(d) for d in durations)
        n = len(ordered)
        for q, est in ((0.5, pooled.p50), (0.95, pooled.p95)):
            rank_up = min(n, math.ceil(q * (n - 1) + 1.0))
            assert est == pytest.approx(ordered[rank_up - 1], rel=0.34, abs=1e-9)

    def test_from_histogram_empty(self):
        empty = FixedBucketHistogram(linear_buckets(0.0, 1.0, 3))
        assert StageStats.from_histogram(empty) == StageStats(0, 0.0, 0.0, 0.0, 0.0)
