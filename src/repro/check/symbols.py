"""Project symbol table: the whole-tree model semantic rules reason over.

The per-node rules in :mod:`repro.check.rules` see one AST node at a time;
the semantic analyzers (:mod:`repro.check.concurrency`,
:mod:`repro.check.units`, :mod:`repro.check.determinism`) need to answer
questions that span modules — "which function does this aliased import
call?", "what class is ``self._requests`` an instance of?".  This module
builds that context once per lint invocation:

- :class:`ModuleInfo` — one parsed module: its dotted name, import alias
  map, top-level functions and classes;
- :class:`ClassInfo` — methods, base-class names and the constructor types
  of ``self.<attr>`` assignments (``self._requests = SimpleQueue()`` ⇒
  ``_requests: queue.SimpleQueue``);
- :class:`ProjectModel` — every module keyed by dotted name and by path,
  plus :meth:`ProjectModel.resolve` which turns a dotted expression as
  written in some module (``np.random.default_rng``, ``VirtualClock``,
  ``_queuemod.SimpleQueue``) into a canonical project-internal qualname or
  a canonical external name.

:func:`build_project` accepts ``{path: source}`` so tests can assemble
multi-module fixture projects without touching disk;
:meth:`ProjectModel.from_paths` is what :func:`repro.check.engine.
check_paths` uses on the real tree.  Everything is a plain AST pass — no
imports are executed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectModel",
    "build_project",
    "module_name_for_path",
]

#: Directory roots a dotted module name may start from.  ``repro`` makes
#: ``src/repro/stream/runner.py`` → ``repro.stream.runner``; the others let
#: tests/benchmarks/examples participate in one project model.
_PACKAGE_ROOTS = ("repro", "tests", "benchmarks", "examples")


def module_name_for_path(path: str) -> str:
    """Dotted module name for a file path (best effort, never fails).

    Anchored at the last occurrence of a known package root; files outside
    any root fall back to their stem, so single-file fixture projects get a
    usable name too.
    """
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    anchor = 0
    for i, part in enumerate(parts):
        if part in _PACKAGE_ROOTS:
            anchor = i
    dotted = [p for p in parts[anchor:] if p not in ("", ".")]
    if dotted and dotted[-1] == "__init__":
        dotted = dotted[:-1]
    if not dotted:
        return Path(path).stem or "<module>"
    if anchor == 0 and dotted[0] not in _PACKAGE_ROOTS:
        # No known root: just the stem (fixtures like ``a.py``).
        return dotted[-1]
    return ".".join(dotted)


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition."""

    qualname: str  #: ``repro.stream.runner.StreamRunner.run``
    module: str  #: defining module's dotted name
    cls: str | None  #: bare class name for methods, ``None`` for functions
    name: str  #: bare function name
    node: ast.AST  #: the ``FunctionDef`` / ``AsyncFunctionDef``
    #: Bare/dotted class names this function directly constructs and
    #: returns (``return Worker(...)``) — the factory-indirection seam.
    returns: tuple[str, ...] = ()


@dataclass
class ClassInfo:
    """One class definition plus what its ``self`` looks like."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: tuple[str, ...]  #: base-class names as written (dotted)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr> = Ctor(...)`` assignments anywhere in the class body,
    #: attr → constructor name as written (resolved lazily via the module).
    attr_ctors: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module of the project."""

    name: str
    path: str
    tree: ast.Module
    #: local alias → dotted target (``np`` → ``numpy``,
    #: ``VirtualClock`` → ``repro.stream.clock.VirtualClock``).
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)


def _collect_imports(module_name: str, tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                imports[local] = alias.name if alias.asname else alias.name.split(".", 1)[0]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: climb from the containing package.
                parts = module_name.split(".")
                parts = parts[: max(len(parts) - node.level, 0)]
                base = ".".join(parts + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


def _returned_constructors(func: ast.AST) -> tuple[str, ...]:
    """Names of classes directly constructed in ``return Ctor(...)``."""
    names: list[str] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
            name = _dotted(node.value.func)
            if name and name[:1].isalpha() and name.split(".")[-1][:1].isupper():
                names.append(name)
    return tuple(dict.fromkeys(names))


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _collect_class(module: str, node: ast.ClassDef) -> ClassInfo:
    info = ClassInfo(
        qualname=f"{module}.{node.name}",
        module=module,
        name=node.name,
        node=node,
        bases=tuple(b for b in (_dotted(base) for base in node.bases) if b),
    )
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[stmt.name] = FunctionInfo(
                qualname=f"{info.qualname}.{stmt.name}",
                module=module,
                cls=node.name,
                name=stmt.name,
                node=stmt,
                returns=_returned_constructors(stmt),
            )
            for sub in ast.walk(stmt):
                target = None
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    target, value = sub.targets[0], sub.value
                elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                    target, value = sub.target, sub.value
                else:
                    continue
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and isinstance(value, ast.Call)
                ):
                    ctor = _dotted(value.func)
                    if ctor:
                        info.attr_ctors.setdefault(target.attr, ctor)
    return info


def _collect_module(name: str, path: str, tree: ast.Module) -> ModuleInfo:
    info = ModuleInfo(name=name, path=path, tree=tree, imports=_collect_imports(name, tree))
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[stmt.name] = FunctionInfo(
                qualname=f"{name}.{stmt.name}",
                module=name,
                cls=None,
                name=stmt.name,
                node=stmt,
                returns=_returned_constructors(stmt),
            )
        elif isinstance(stmt, ast.ClassDef):
            info.classes[stmt.name] = _collect_class(name, stmt)
    return info


class ProjectModel:
    """Symbol tables for a set of modules plus name resolution across them.

    Attributes
    ----------
    modules:
        Dotted module name → :class:`ModuleInfo`.
    by_path:
        Source path (as given) → :class:`ModuleInfo`.
    functions, classes:
        Project-wide qualname indexes (methods included in ``functions``).
    """

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.by_path: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: Scratch space for analyzers that cache per-project results
        #: (e.g. the call graph); keyed by analyzer-chosen strings.
        self.cache: dict[str, object] = {}

    # ------------------------------------------------------------ building

    def add_module(self, path: str, tree: ast.Module) -> ModuleInfo:
        name = module_name_for_path(path)
        info = _collect_module(name, path, tree)
        self.modules[name] = info
        self.by_path[path] = info
        for fn in info.functions.values():
            self.functions[fn.qualname] = fn
        for cls in info.classes.values():
            self.classes[cls.qualname] = cls
            for m in cls.methods.values():
                self.functions[m.qualname] = m
        return info

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "ProjectModel":
        project = cls()
        for path, source in sources.items():
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                continue  # the engine reports E999 separately
            project.add_module(path, tree)
        return project

    @classmethod
    def from_paths(cls, paths: Iterable[str | Path]) -> "ProjectModel":
        sources: dict[str, str] = {}
        for p in paths:
            try:
                sources[str(p)] = Path(p).read_text(encoding="utf-8")
            except OSError:
                continue
        return cls.from_sources(sources)

    # ---------------------------------------------------------- resolution

    def module_for(self, path: str) -> ModuleInfo | None:
        return self.by_path.get(path)

    def resolve(self, module: ModuleInfo, dotted: str) -> tuple[str, str] | None:
        """Resolve a dotted name as written in ``module``.

        Returns ``(kind, name)`` with ``kind`` one of ``"function"``,
        ``"class"`` or ``"external"``; external names have their import
        aliases expanded (``np.random.rand`` → ``numpy.random.rand``).
        ``None`` means the name is a plain local/builtin we know nothing
        about.
        """
        head, _, rest = dotted.partition(".")
        target = None
        if head in module.imports:
            target = module.imports[head] + (("." + rest) if rest else "")
        elif head in module.functions and not rest:
            return ("function", module.functions[head].qualname)
        elif head in module.classes:
            qual = f"{module.name}.{dotted}"
            if not rest:
                return ("class", qual)
            cls = module.classes[head]
            if rest in cls.methods:
                return ("function", cls.methods[rest].qualname)
            return ("external", qual)
        elif dotted in self.functions:
            return ("function", dotted)
        elif dotted in self.classes:
            return ("class", dotted)
        else:
            return None
        # Import-mediated: the target may itself be project-internal.
        if target in self.functions:
            return ("function", target)
        if target in self.classes:
            return ("class", target)
        if target in self.modules:
            return ("external", target)  # a module object, not callable
        # ``from repro.x import helper`` where repro.x is in the project but
        # helper resolution failed above means external; but also handle
        # ``import repro.x as m; m.helper()``.
        mod, _, attr = target.rpartition(".")
        if attr and mod in self.modules:
            owner = self.modules[mod]
            if attr in owner.functions:
                return ("function", owner.functions[attr].qualname)
            if attr in owner.classes:
                return ("class", owner.classes[attr].qualname)
        return ("external", target)

    def resolve_class(self, module: ModuleInfo, name: str) -> ClassInfo | None:
        """The :class:`ClassInfo` a (possibly dotted/aliased) name denotes."""
        resolved = self.resolve(module, name)
        if resolved and resolved[0] == "class":
            return self.classes.get(resolved[1])
        return None

    def method_on(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        """Look up a method on a class, walking resolvable project bases."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.methods:
                return current.methods[name]
            module = self.modules.get(current.module)
            if module is None:
                continue
            for base in current.bases:
                base_cls = self.resolve_class(module, base)
                if base_cls is not None:
                    stack.append(base_cls)
        return None


def build_project(sources: dict[str, str]) -> ProjectModel:
    """Build a :class:`ProjectModel` from ``{path: source}`` (test-friendly)."""
    return ProjectModel.from_sources(sources)
