"""Ablation bench — value of DiVE's individual design choices.

Not a paper figure; DESIGN.md calls these out as the choices worth
isolating (rotation removal, FOE noise filter, cluster merging, and this
reproduction's temporal union).
"""

from conftest import CONFIGS

from repro.experiments import print_table, run_ablation


def test_ablation_design_choices(bench_once):
    rows = bench_once(run_ablation, CONFIGS["ablation"])
    print_table(
        ["variant", "mAP", "RT (ms)"],
        [[r.variant, r.map, r.response_time * 1000] for r in rows],
        title="Ablation — DiVE pipeline variants @2 Mbps (nuScenes-like)",
    )
    by = {r.variant: r for r in rows}
    # The full pipeline should not be materially worse than any ablation —
    # each stage pays its way (or at worst is neutral at this scale).
    for name, row in by.items():
        if name != "full":
            assert by["full"].map >= row.map - 0.06, f"{name} unexpectedly beats full pipeline"
