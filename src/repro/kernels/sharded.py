"""Multiprocess row-sharding backend: reference code, more cores.

The extracted kernels all reduce over macroblock rows independently —
ESA/TESA screens, SADs and argmins per row; motion compensation, the 8x8
DCT and the quantiser per block.  This backend therefore shards the frame
into contiguous macroblock-row *bands*, runs the unmodified reference
implementation on each band in a persistent ``multiprocessing`` fork pool
(``row0``/``row_count`` banding), and concatenates the bands in row order.
Band results are bit-identical to the matching rows of a full-frame call,
so the merged output is bit-identical to the reference for **any** worker
count — the determinism tests pin 1/2/4-worker digests against each other
and against the ``numpy`` reference.

The pattern searches (DIA/HEX/UMH) are *not* sharded: their median
predictors couple neighbouring macroblock rows, so a row band would see
different predictors than the full frame.  Those kernels fall through to
the reference (or the ``cext`` backend when both are active — backends are
exclusive, so in practice: the reference).

**Frame transport** uses ``multiprocessing.shared_memory`` arenas: the
parent copies each operand into a named shared block once per call and the
workers map it read-only, so a frame crosses the process boundary without
pickling its pixels.  Small operands (MV fields, QP maps) are pickled —
they are tens of bytes per band.

**Pool ownership (S012).**  The pool and the arenas belong to the thread
that activated the backend; every pooled call is serialised through
``self._lock``.  Under ``repro.stream``/``repro.fleet`` the encoder runs
on a single pipeline thread, but the lock makes the rule enforceable
rather than conventional: concurrent kernel calls queue instead of
corrupting arena contents mid-flight.  Activate the backend *before*
starting stream/fleet worker threads so the fork happens while the
process is single-threaded (fork + live threads = undefined behaviour).
"""

from __future__ import annotations

import atexit
import threading
from multiprocessing import get_context
from multiprocessing import shared_memory as _shm

import numpy as np

from repro.kernels import KernelBackend

__all__ = ["ShardedBackend"]

#: Below this many rows of work per worker the fork-pool round trip costs
#: more than it saves; such calls run the reference inline.  (Intra coding's
#: per-diagonal DCT planes, for example, are a few blocks tall.)
_MIN_ROWS_PER_WORKER = 2
_MIN_PLANE_ELEMENTS = 16384


def _reap(pool) -> None:
    """Terminate and join a detached pool (never called under a lock)."""
    if pool is not None:
        pool.terminate()
        pool.join()


def _bands(rows: int, parts: int) -> list[tuple[int, int]]:
    """Contiguous ``(row0, row_count)`` bands covering ``rows`` in order."""
    parts = max(1, min(parts, rows))
    chunk = np.array_split(np.arange(rows), parts)
    return [(int(c[0]), int(c.size)) for c in chunk if c.size]


# ----------------------------------------------------------------- workers
# Top-level functions: fork inherits them, spawn could pickle them.


def _attach(desc):
    """Map a shared-memory descriptor back into an ndarray view."""
    name, shape, dtype = desc
    shm = _shm.SharedMemory(name=name)
    try:  # the parent owns the segment's lifetime; workers must not track it
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf), shm


def _w_exhaustive(cur_desc, ref_desc, row0, row_count, kw):
    from repro.codec.motion import _exhaustive_search

    cur, cur_shm = _attach(cur_desc)
    ref, ref_shm = _attach(ref_desc)
    try:
        return _exhaustive_search(cur, ref, row0=row0, row_count=row_count, **kw)
    finally:
        cur_shm.close()
        ref_shm.close()


def _w_motion_compensate(ref_desc, mv, block, row0, row_count, rng):
    from repro.codec.motion import _motion_compensate_reference

    ref, ref_shm = _attach(ref_desc)
    try:
        return _motion_compensate_reference(
            ref, mv, block=block, row0=row0, row_count=row_count, rng=rng
        )
    finally:
        ref_shm.close()


def _w_dct(plane_desc, px0, px1):
    from repro.codec.transform import _dct_blocks_reference

    plane, shm = _attach(plane_desc)
    try:
        return _dct_blocks_reference(plane[px0:px1])
    finally:
        shm.close()


def _w_quantize(coeffs_desc, qp, mb_size, b0, b1, reps):
    from repro.codec.transform import _quantize_reference

    coeffs, shm = _attach(coeffs_desc)
    try:
        return _quantize_reference(coeffs[b0 * reps : b1 * reps], qp[b0:b1], mb_size=mb_size)
    finally:
        shm.close()


def _w_dequantize(levels_desc, qp, mb_size, b0, b1, reps):
    from repro.codec.transform import _dequantize_reference

    levels, shm = _attach(levels_desc)
    try:
        return _dequantize_reference(levels[b0 * reps : b1 * reps], qp[b0:b1], mb_size=mb_size)
    finally:
        shm.close()


# ----------------------------------------------------------------- backend


class ShardedBackend(KernelBackend):
    """Persistent fork-pool backend sharding macroblock rows (see module doc)."""

    name = "sharded"

    def __init__(self, workers: int = 2) -> None:
        self._lock = threading.Lock()
        self._workers = int(workers)
        self._pool = None
        self._arenas: dict[str, tuple[_shm.SharedMemory, int]] = {}
        self.exhaustive_search = self._exhaustive_search
        self.motion_compensate = self._motion_compensate
        self.dct_blocks = self._dct_blocks
        self.quantize = self._quantize
        self.dequantize = self._dequantize
        # The pool and arenas outlive any single use_backend() scope by
        # design (re-warming a fork pool per call would dominate); reclaim
        # them at interpreter exit instead.
        atexit.register(self.close)

    def available(self) -> bool:
        try:
            get_context("fork")
        except ValueError:
            return False
        return True

    def why_unavailable(self) -> str | None:
        return None if self.available() else "no fork start method on this platform"

    def configure(self, *, workers: int | None = None) -> None:
        if workers is None:
            return
        workers = max(1, int(workers))
        stale = None
        with self._lock:
            if workers != self._workers:
                self._workers = workers
                stale = self._take_pool_locked()
        _reap(stale)

    def warm(self) -> None:
        with self._lock:
            self._ensure_pool_locked()

    def close(self) -> None:
        with self._lock:
            stale = self._take_pool_locked()
            arenas = list(self._arenas.values())
            self._arenas.clear()
        # Tear down outside the lock: pool join blocks, and nothing here
        # touches guarded state any more.
        _reap(stale)
        for shm, _ in arenas:
            shm.close()
            shm.unlink()

    # ------------------------------------------------------------ pool/arena

    def _ensure_pool_locked(self):
        if self._pool is None:
            self._pool = get_context("fork").Pool(processes=self._workers)
        return self._pool

    def _take_pool_locked(self):
        pool, self._pool = self._pool, None
        return pool

    def _share_locked(self, role: str, arr: np.ndarray):
        """Copy ``arr`` into the (grown-as-needed) shared arena for ``role``."""
        arr = np.ascontiguousarray(arr)
        entry = self._arenas.get(role)
        if entry is None or entry[1] < arr.nbytes:
            if entry is not None:
                entry[0].close()
                entry[0].unlink()
            size = max(arr.nbytes, 1)
            shm = _shm.SharedMemory(create=True, size=size)
            entry = (shm, size)
            self._arenas[role] = entry
        shm = entry[0]
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        return (shm.name, arr.shape, arr.dtype.str)

    # -------------------------------------------------------------- kernels

    def _exhaustive_search(
        self, current, reference, *, search_range, block, lambda_mv, transformed, subpel
    ):
        from repro.codec.motion import _exhaustive_search

        current = np.asarray(current)
        rows = current.shape[0] // block
        with self._lock:
            parts = _bands(rows, self._workers)
            if len(parts) <= 1 or rows < _MIN_ROWS_PER_WORKER * len(parts):
                parts = None
            else:
                pool = self._ensure_pool_locked()
                cur_d = self._share_locked("cur", current)
                ref_d = self._share_locked("ref", np.asarray(reference))
                kw = dict(
                    search_range=search_range,
                    block=block,
                    lambda_mv=lambda_mv,
                    transformed=transformed,
                    subpel=subpel,
                )
                out = pool.starmap(
                    _w_exhaustive, [(cur_d, ref_d, r0, rc, kw) for r0, rc in parts]
                )
        if parts is None:
            return _exhaustive_search(
                current,
                reference,
                search_range=search_range,
                block=block,
                lambda_mv=lambda_mv,
                transformed=transformed,
                subpel=subpel,
                row0=0,
                row_count=rows,
            )
        mv = np.concatenate([p[0] for p in out], axis=0)
        sad = np.concatenate([p[1] for p in out], axis=0)
        return mv, sad

    def _motion_compensate(self, reference, mv, *, block=16):
        from repro.codec.motion import _motion_compensate_reference

        rows = mv.shape[0]
        # The padding radius depends on the *full* MV field; computed once
        # here so every band worker pads identically.
        rng = int(np.ceil(np.abs(mv).max())) + 2
        with self._lock:
            parts = _bands(rows, self._workers)
            if len(parts) <= 1 or rows < _MIN_ROWS_PER_WORKER * len(parts):
                parts = None
            else:
                pool = self._ensure_pool_locked()
                ref_d = self._share_locked("ref", np.asarray(reference, dtype=np.float32))
                out = pool.starmap(
                    _w_motion_compensate,
                    [(ref_d, mv, block, r0, rc, rng) for r0, rc in parts],
                )
        if parts is None:
            return _motion_compensate_reference(reference, mv, block=block)
        return np.concatenate(out, axis=0)

    def _dct_blocks(self, plane):
        from repro.codec.transform import _dct_blocks_reference

        plane = np.asarray(plane)
        if plane.ndim != 2 or plane.shape[0] % 8 or plane.shape[1] % 8:
            return _dct_blocks_reference(plane)  # let the reference raise
        rows8 = plane.shape[0] // 8
        with self._lock:
            parts = _bands(rows8, self._workers)
            if (
                len(parts) <= 1
                or rows8 < _MIN_ROWS_PER_WORKER * len(parts)
                or plane.size < _MIN_PLANE_ELEMENTS
            ):
                parts = None
            else:
                pool = self._ensure_pool_locked()
                plane_d = self._share_locked("plane", plane)
                out = pool.starmap(
                    _w_dct, [(plane_d, r0 * 8, (r0 + rc) * 8) for r0, rc in parts]
                )
        if parts is None:
            return _dct_blocks_reference(plane)
        return np.concatenate(out, axis=0)

    def _quant_common(self, worker, data, qp_per_mb, mb_size):
        from repro.codec.transform import _dequantize_reference, _quantize_reference

        reference = _quantize_reference if worker is _w_quantize else _dequantize_reference
        data = np.asarray(data)
        qp = np.asarray(qp_per_mb, dtype=float)
        reps = mb_size // 8
        if (
            data.ndim != 4
            or qp.ndim != 2
            or qp.shape != (data.shape[0] // reps, data.shape[2] // reps)
        ):
            return reference(data, qp_per_mb, mb_size=mb_size)  # let it raise
        mb_rows = qp.shape[0]
        with self._lock:
            parts = _bands(mb_rows, self._workers)
            if (
                len(parts) <= 1
                or mb_rows < _MIN_ROWS_PER_WORKER * len(parts)
                or data.size < _MIN_PLANE_ELEMENTS
            ):
                parts = None
            else:
                pool = self._ensure_pool_locked()
                data_d = self._share_locked("coeffs", data)
                out = pool.starmap(
                    worker,
                    [(data_d, qp, mb_size, r0, r0 + rc, reps) for r0, rc in parts],
                )
        if parts is None:
            return reference(data, qp, mb_size=mb_size)
        return np.concatenate(out, axis=0)

    def _quantize(self, coeffs, qp_per_mb, *, mb_size=16):
        return self._quant_common(_w_quantize, coeffs, qp_per_mb, mb_size)

    def _dequantize(self, levels, qp_per_mb, *, mb_size=16):
        return self._quant_common(_w_dequantize, levels, qp_per_mb, mb_size)
