"""DDS baseline (Du et al., SIGCOMM 2020).

Server-driven two-pass streaming: the agent first uploads every frame at
low quality; the server runs inference and feeds the detected regions back;
the agent then re-uploads just those regions in high quality and the server
produces the final result on the composite image.  Accuracy tracks DiVE
closely — the second pass restores quality where it matters — but the final
result always pays *two* uplink trips plus two inference passes, which is
why DDS's response time is the highest of the compared schemes.

As in the paper's methodology, frame-level transmission is used (no
segment batching) for a fair latency comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import AnalyticsScheme, FrameResult, LatencyModel, SchemeRun
from repro.codec.encoder import EncoderConfig, VideoEncoder, encode_region_update
from repro.core.tracking import MotionVectorTracker
from repro.codec.motion import estimate_motion
from repro.edge.detector import Detection
from repro.edge.server import EdgeServer
from repro.network.estimator import BandwidthEstimator
from repro.network.trace import BandwidthTrace
from repro.world.datasets import Clip

__all__ = ["DDSConfig", "DDSScheme"]


@dataclass(frozen=True)
class DDSConfig:
    """DDS parameters.

    Attributes
    ----------
    low_fraction:
        Fraction of the per-frame bandwidth budget spent on the
        low-quality first pass (the rest is the region-upload budget).
    region_qp:
        *Best-case* QP of the high-quality region re-upload; the actual QP
        is raised along a ladder until the region bits fit the remaining
        per-frame budget, so DDS stays bandwidth-compliant.
    region_dilate_blocks:
        Safety margin around feedback regions.
    """

    low_fraction: float = 0.45
    region_qp: float = 6.0
    region_dilate_blocks: int = 1
    hol_timeout: float = 0.6
    bandwidth_safety: float = 0.85
    me_method: str = "hex"
    latency: LatencyModel = field(default_factory=LatencyModel)


class DDSScheme(AnalyticsScheme):
    name = "DDS"

    def __init__(self, config: DDSConfig | None = None):
        self.config = config or DDSConfig()

    def _region_mask(self, detections: list[Detection], grid_shape: tuple[int, int], block: int) -> np.ndarray:
        cfg = self.config
        rows, cols = grid_shape
        mask = np.zeros(grid_shape, dtype=bool)
        for det in detections:
            x0, y0, x1, y1 = det.bbox
            c0 = int(np.clip(np.floor(x0 / block) - cfg.region_dilate_blocks, 0, cols))
            c1 = int(np.clip(np.ceil(x1 / block) + cfg.region_dilate_blocks, 0, cols))
            r0 = int(np.clip(np.floor(y0 / block) - cfg.region_dilate_blocks, 0, rows))
            r1 = int(np.clip(np.ceil(y1 / block) + cfg.region_dilate_blocks, 0, rows))
            mask[r0:r1, c0:c1] = True
        return mask

    def run(self, clip: Clip, trace: BandwidthTrace, server: EdgeServer) -> SchemeRun:
        cfg = self.config
        lat = cfg.latency
        fps = clip.fps
        search_range = self.search_range_for(clip)
        encoder = VideoEncoder(
            EncoderConfig(me_method=cfg.me_method, search_range=search_range),
            tracer=self.tracer,
            sanitizer=self.sanitizer,
        )
        tracker = MotionVectorTracker()
        estimator = BandwidthEstimator(window=1.0, initial_bps=trace.rate_at(0.0))
        uplink = self.make_uplink(trace, hol_timeout=cfg.hol_timeout)
        run = SchemeRun(scheme=self.name, clip_name=clip.name)
        block = encoder.config.block
        grid_shape = (clip.intrinsics.height // block, clip.intrinsics.width // block)
        force_intra = False
        needs_server_reset = False
        prev_raw = None

        for i in range(clip.n_frames):
            with self.tracer.frame(i):
                record = clip.frame(i)
                t_cap = record.time
                frame = record.image
                motion = None
                if prev_raw is not None:
                    motion = estimate_motion(
                        frame, prev_raw, method=cfg.me_method,
                        search_range=search_range, tracer=self.tracer,
                    )
                prev_raw = frame

                # ---- Pass 1: low-quality full frame -------------------------
                bandwidth = estimator.estimate(t_cap)
                budget = max(bandwidth / fps * cfg.bandwidth_safety, 2048.0)
                encoded = encoder.encode(
                    frame,
                    target_bits=budget * cfg.low_fraction,
                    force_intra=force_intra,
                )
                force_intra = False
                enqueue_time = t_cap + lat.encode
                skip_stale = uplink.queue_wait(enqueue_time) > cfg.hol_timeout
                tx1 = None if skip_stale else uplink.transmit(i, encoded.size_bytes, enqueue_time)
                if tx1 is None or tx1.dropped:
                    if tx1 is not None:
                        estimator.record_outage(tx1.start_time + cfg.hol_timeout)
                    force_intra = True
                    needs_server_reset = True
                    detections = tracker.track(motion.mv) if motion is not None else tracker.detections
                    self._finish_frame(
                        run,
                        FrameResult(
                            index=i,
                            capture_time=t_cap,
                            detections=detections,
                            response_time=lat.encode + lat.track,
                            source="tracked",
                            dropped=True,
                        )
                    )
                    continue
                if needs_server_reset:
                    server.reset()
                    needs_server_reset = False
                low_result = server.process(encoded, record, arrival_time=tx1.finish_time)
                estimator.record_ack(tx1.start_time, tx1.finish_time, encoded.size_bytes)

                # ---- Feedback + pass 2: high-quality regions ----------------
                feedback_time = low_result.result_time + lat.feedback_processing
                region_mask = self._region_mask(low_result.detections, grid_shape, block)
                if not region_mask.any():
                    # Nothing to re-upload; the low-quality result is final.
                    tracker.update(low_result.detections)
                    self._finish_frame(
                        run,
                        FrameResult(
                            index=i,
                            capture_time=t_cap,
                            detections=low_result.detections,
                            response_time=low_result.result_time - t_cap,
                            source="edge",
                            bytes_sent=encoded.size_bytes,
                        )
                    )
                    continue
                # Bandwidth compliance: raise the region QP along a ladder, and
                # if even the coarsest QP overshoots, trim the region set to the
                # highest-confidence detections until the upgrade fits.
                region_budget = max(budget * (1.0 - cfg.low_fraction), 1024.0)
                bits, updated = encode_region_update(
                    encoded.reconstruction, frame, region_mask, qp=cfg.region_qp, block=block
                )
                max_qp = cfg.region_qp + 24
                for qp in (cfg.region_qp + 6, cfg.region_qp + 12, cfg.region_qp + 18, max_qp):
                    if bits <= region_budget:
                        break
                    bits, updated = encode_region_update(
                        encoded.reconstruction, frame, region_mask, qp=qp, block=block
                    )
                ranked = sorted(low_result.detections, key=lambda d: -d.confidence)
                keep = len(ranked)
                while bits > region_budget and keep > 1:
                    keep = max(1, keep // 2)
                    region_mask = self._region_mask(ranked[:keep], grid_shape, block)
                    bits, updated = encode_region_update(
                        encoded.reconstruction, frame, region_mask, qp=max_qp, block=block
                    )
                region_bytes = int(np.ceil(bits / 8.0))
                tx2 = uplink.transmit(i, region_bytes, feedback_time + lat.region_encode)
                if tx2.dropped:
                    # Second pass lost: fall back to the low-quality result.
                    tracker.update(low_result.detections)
                    self._finish_frame(
                        run,
                        FrameResult(
                            index=i,
                            capture_time=t_cap,
                            detections=low_result.detections,
                            response_time=low_result.result_time - t_cap,
                            source="edge",
                            bytes_sent=encoded.size_bytes,
                            dropped=True,
                        )
                    )
                    continue
                final = server.process_image(updated, record, arrival_time=tx2.finish_time)
                estimator.record_ack(tx2.start_time, tx2.finish_time, region_bytes)
                tracker.update(final.detections)
                self._finish_frame(
                    run,
                    FrameResult(
                        index=i,
                        capture_time=t_cap,
                        detections=final.detections,
                        response_time=final.result_time - t_cap,
                        source="edge",
                        bytes_sent=encoded.size_bytes + region_bytes,
                    )
                )
        return run
