"""Video encoder: GoP management, QP offset maps and rate control.

The encoder mirrors the pipeline of Section II-B: motion estimation, QP
decision per macroblock (base QP from rate control + the caller's QP offset
map, which is how DiVE expresses differential encoding), transform
quantisation and bit accounting.  Reconstruction uses the quantised data,
so encoder and decoder stay in lockstep and the decoded frames carry true
quantisation distortion.

Two rate modes:

- **CBR**: ``target_bits`` per frame; a binary search over the base QP
  finds the highest quality that fits the budget (the DCT is computed once
  and re-quantised per probe, so the search is cheap).
- **CRF**: fixed ``base_qp`` (used by the Fig 12 foreground-quality
  experiment, where the foreground QP is pinned to 0).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.check.sanitize import NULL_SANITIZER, ArraySanitizer, NullSanitizer
from repro.codec.intra import intra_encode
from repro.codec.motion import MotionEstimate, estimate_motion, motion_compensate
from repro.codec.transform import (
    QuantBitCounter,
    dct_blocks,
    dequantize,
    idct_blocks,
    quantize,
    transform_cost_bits,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = ["EncodedFrame", "EncoderConfig", "VideoEncoder", "encode_region_update"]

#: Flat prediction level for intra frames (mid-gray).
_INTRA_DC = 128.0
_MAX_QP = 51
#: Per-frame header/syntax overhead in bits (frame header, MV field).
_FRAME_OVERHEAD_BITS = 256.0
#: Average MV syntax cost per macroblock; skip-mode MBs make the true
#: average low.
_MV_BITS_PER_MB = 2.0


@dataclass(frozen=True)
class EncoderConfig:
    """Encoder parameters.

    Attributes
    ----------
    me_method:
        Motion-estimation search: ``dia`` / ``hex`` / ``umh`` / ``esa`` /
        ``tesa`` (paper default after Fig 9: HEX).
    search_range:
        Motion search window, pixels.
    gop:
        Group-of-pictures length; every ``gop``-th frame is an I-frame.
    block:
        Macroblock size.
    lambda_mv:
        Rate weight of MV coding in the motion search.
    intra_prediction:
        Predict I-frame blocks from reconstructed neighbours (DC /
        horizontal / vertical modes) instead of flat mid-gray; saves a
        large share of I-frame bits, exactly as in H.264.
    """

    me_method: str = "hex"
    search_range: int = 16
    gop: int = 48
    block: int = 16
    lambda_mv: float = 4.0
    intra_prediction: bool = True


@dataclass
class EncodedFrame:
    """One encoded frame — everything the decoder and DiVE need.

    Attributes
    ----------
    index:
        Encode-order index.
    frame_type:
        ``"I"`` or ``"P"``.
    bits:
        Total coded size in bits (including per-frame overhead).
    size_bytes:
        ``ceil(bits / 8)``.
    base_qp:
        Rate-control QP before offsets.
    qp_map:
        ``(mb_rows, mb_cols)`` effective QP per macroblock.
    levels:
        Quantised DCT levels (block-major), the "bitstream payload".
    motion:
        Motion estimate (``None`` for I-frames).
    reconstruction:
        Decoder-identical reconstruction of this frame.
    bits_per_mb:
        ``(mb_rows, mb_cols)`` coefficient bits per macroblock.
    """

    index: int
    frame_type: str
    bits: float
    size_bytes: int
    base_qp: float
    qp_map: np.ndarray
    levels: np.ndarray
    motion: MotionEstimate | None
    reconstruction: np.ndarray
    bits_per_mb: np.ndarray
    intra_modes: np.ndarray | None = None

    @property
    def mv(self) -> np.ndarray | None:
        return None if self.motion is None else self.motion.mv


class VideoEncoder:
    """Stateful encoder over a frame sequence.

    ``tracer`` instruments the encode pipeline: span ``"encode"`` with
    sub-spans ``me`` / ``mc`` / ``dct`` / ``rate_control`` / ``quant``,
    plus per-frame bit and QP gauges.  ``sanitizer`` validates the input
    frame, the QP map and the reconstruction at the encode boundary (see
    :mod:`repro.check.sanitize`).  The default no-op tracer/sanitizer cost
    nothing.
    """

    def __init__(
        self,
        config: EncoderConfig | None = None,
        *,
        tracer: Tracer | NullTracer = NULL_TRACER,
        sanitizer: ArraySanitizer | NullSanitizer = NULL_SANITIZER,
    ):
        self.config = config or EncoderConfig()
        self.tracer = tracer
        self.sanitizer = sanitizer
        self._reference: np.ndarray | None = None
        self._frame_index = 0

    @property
    def frame_index(self) -> int:
        return self._frame_index

    @property
    def reference(self) -> np.ndarray | None:
        """Current reference frame (the previous reconstruction), if any.

        DiVE's preprocessing computes the motion field against this exact
        reference and hands it back to :meth:`encode` via ``motion=`` so the
        search runs once, as it does inside a real codec.
        """
        return self._reference

    def reset(self) -> None:
        """Drop the reference frame; the next frame becomes an I-frame."""
        self._reference = None
        self._frame_index = 0

    def encode(
        self,
        frame: np.ndarray,
        *,
        qp_offsets: np.ndarray | None = None,
        target_bits: float | None = None,
        base_qp: float | None = None,
        force_intra: bool = False,
        motion: MotionEstimate | None = None,
    ) -> EncodedFrame:
        """Encode one frame.

        Exactly one of ``target_bits`` (CBR) and ``base_qp`` (CRF) must be
        given.  ``qp_offsets`` is the per-macroblock QP offset map of
        Section II-B — positive offsets compress harder (DiVE assigns 0 to
        foreground macroblocks and delta to the background).
        """
        if (target_bits is None) == (base_qp is None):
            raise ValueError("specify exactly one of target_bits (CBR) or base_qp (CRF)")
        frame = np.asarray(frame, dtype=np.float32)
        cfg = self.config
        san = self.sanitizer
        if san.enabled:
            san.check(frame, "encoder/input", name="frame", dtype=np.float32, block_aligned=True)
        if frame.shape[0] % cfg.block or frame.shape[1] % cfg.block:
            raise ValueError(f"frame shape {frame.shape} not a multiple of block {cfg.block}")
        mb_shape = (frame.shape[0] // cfg.block, frame.shape[1] // cfg.block)
        offsets = (
            np.zeros(mb_shape, dtype=np.float64) if qp_offsets is None else np.asarray(qp_offsets, dtype=np.float64)
        )
        if offsets.shape != mb_shape:
            raise ValueError(f"qp_offsets shape {offsets.shape} != macroblock grid {mb_shape}")

        tr = self.tracer
        with tr.span("encode"):
            intra = force_intra or self._reference is None or (self._frame_index % cfg.gop == 0)
            if intra:
                motion = None
                prediction = np.full_like(frame, _INTRA_DC)
                overhead = _FRAME_OVERHEAD_BITS
            else:
                if motion is None:
                    motion = estimate_motion(
                        frame,
                        self._reference,
                        method=cfg.me_method,
                        search_range=cfg.search_range,
                        block=cfg.block,
                        lambda_mv=cfg.lambda_mv,
                        tracer=tr,
                    )
                elif motion.mv.shape[:2] != mb_shape:
                    raise ValueError(f"precomputed motion shape {motion.mv.shape[:2]} != grid {mb_shape}")
                with tr.span("mc"):
                    prediction = motion_compensate(self._reference, motion.mv, block=cfg.block)
                overhead = _FRAME_OVERHEAD_BITS + _MV_BITS_PER_MB * mb_shape[0] * mb_shape[1]

            residual = frame - prediction
            with tr.span("dct"):
                coeffs = dct_blocks(residual)

            if base_qp is not None:
                chosen_qp = float(np.clip(base_qp, 0, _MAX_QP))
            else:
                with tr.span("rate_control"):
                    counter = QuantBitCounter(coeffs, offsets, mb_size=cfg.block, max_qp=_MAX_QP)
                    chosen_qp = self._rate_control(counter, float(target_bits) - overhead)

            qp_map = np.clip(chosen_qp + offsets, 0, _MAX_QP)
            intra_modes = None
            with tr.span("quant"):
                if intra and cfg.intra_prediction:
                    # Neighbour-predicted intra coding.  Rate control above probed
                    # the flat-prediction residual — usually an over-estimate, but
                    # on noise-like content the mode syntax can tip the real cost
                    # slightly over budget, so bump the QP until it fits.
                    for _ in range(5):
                        levels, intra_modes, recon64, bits_per_mb = intra_encode(frame, qp_map, block=cfg.block)
                        if (
                            target_bits is None
                            or chosen_qp >= _MAX_QP
                            or float(bits_per_mb.sum()) + overhead <= float(target_bits)
                        ):
                            break
                        chosen_qp = min(chosen_qp + 1.0, _MAX_QP)
                        qp_map = np.clip(chosen_qp + offsets, 0, _MAX_QP)
                    reconstruction = recon64.astype(np.float32)
                else:
                    levels = quantize(coeffs, qp_map, mb_size=cfg.block)
                    bits_per_mb = transform_cost_bits(levels, mb_size=cfg.block)
                    recon_residual = idct_blocks(dequantize(levels, qp_map, mb_size=cfg.block))
                    reconstruction = np.clip(prediction + recon_residual, 0.0, 255.0).astype(np.float32)

        total_bits = float(bits_per_mb.sum() + overhead)
        if san.enabled:
            san.check(qp_map, "encoder/qp_map", name="QP map", lo=0.0, hi=float(_MAX_QP))
            if motion is not None:
                san.check(motion.mv, "encoder/motion", name="motion vectors")
            san.check(
                reconstruction, "encoder/reconstruction", name="reconstruction",
                dtype=np.float32, block_aligned=True, lo=0.0, hi=255.0,
            )
        if tr.enabled:
            tr.gauge("bits", total_bits)
            tr.gauge("frame_intra", 1.0 if intra else 0.0)
            tr.gauge("base_qp", float(chosen_qp))
            tr.gauge("qp_mean", float(qp_map.mean()))
            tr.gauge("qp_max", float(qp_map.max()))
            if target_bits is not None:
                tr.gauge("target_bits", float(target_bits))
        encoded = EncodedFrame(
            index=self._frame_index,
            frame_type="I" if intra else "P",
            bits=total_bits,
            size_bytes=int(np.ceil(total_bits / 8.0)),
            base_qp=chosen_qp,
            qp_map=qp_map,
            levels=levels,
            motion=motion,
            reconstruction=reconstruction,
            bits_per_mb=bits_per_mb,
            intra_modes=intra_modes,
        )
        self._reference = reconstruction
        self._frame_index += 1
        return encoded

    @staticmethod
    def _rate_control(counter: QuantBitCounter, budget_bits: float) -> float:
        """Smallest base QP whose coded size fits the bit budget.

        Coefficient bits decrease monotonically with QP, so a binary search
        over integer QPs suffices.  If even QP 51 overshoots, 51 is
        returned (the frame will simply take longer to transmit — the
        network simulator handles queueing).  ``counter`` caches the
        per-offset-group bit curves, so each probe costs one scalar
        re-quantisation per distinct offset value instead of a full-frame
        ``quantize`` + ``transform_cost_bits`` pass.
        """
        bits_at = counter.bits_at
        lo, hi = 0, _MAX_QP
        if bits_at(float(lo)) <= budget_bits:
            return float(lo)
        if bits_at(float(hi)) > budget_bits:
            return float(hi)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if bits_at(float(mid)) <= budget_bits:
                hi = mid
            else:
                lo = mid
        return float(hi)


def encode_region_update(
    base: np.ndarray,
    target: np.ndarray,
    region_mask: np.ndarray,
    *,
    qp: float,
    block: int = 16,
) -> tuple[float, np.ndarray]:
    """Re-encode selected macroblocks of ``target`` at ``qp`` on top of ``base``.

    Models DDS's second pass: the server already holds the low-quality
    decode (``base``); the agent uploads only the feedback-region
    macroblocks, coded as a residual against that decode at high quality.

    Parameters
    ----------
    base:
        The image both sides already share.
    target:
        The (raw) frame the regions should be upgraded towards.
    region_mask:
        ``(mb_rows, mb_cols)`` boolean mask of macroblocks to upgrade.
    qp:
        QP of the upgrade.

    Returns
    -------
    ``(bits, updated_image)`` — the upload cost and the image after
    applying the upgrade.
    """
    base = np.asarray(base, dtype=np.float32)
    target = np.asarray(target, dtype=np.float32)
    mb_shape = (base.shape[0] // block, base.shape[1] // block)
    mask = np.asarray(region_mask, dtype=bool)
    if mask.shape != mb_shape:
        raise ValueError(f"region mask shape {mask.shape} != macroblock grid {mb_shape}")
    pixel_mask = np.kron(mask, np.ones((block, block), dtype=bool))
    residual = np.where(pixel_mask, target - base, 0.0)
    coeffs = dct_blocks(residual)
    qp_map = np.full(mb_shape, float(qp))
    levels = quantize(coeffs, qp_map, mb_size=block)
    bits_per_mb = transform_cost_bits(levels, mb_size=block)
    # Only region blocks are transmitted: coefficient bits plus 8 bits of
    # addressing per block, plus a message header.
    bits = float(bits_per_mb[mask].sum()) + 8.0 * int(mask.sum()) + 64.0
    recon_residual = idct_blocks(dequantize(levels, qp_map, mb_size=block))
    updated = np.clip(base + np.where(pixel_mask, recon_residual, 0.0), 0.0, 255.0).astype(np.float32)
    return bits, updated
