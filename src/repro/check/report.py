"""Reporters for lint findings: human text and machine-readable JSON.

The JSON document is the contract with the CI gate::

    {
      "version": 1,
      "files_checked": 87,
      "findings": [
        {"rule": "S001", "severity": "error", "path": "src/x.py",
         "line": 12, "col": 8, "message": "..."}
      ],
      "summary": {"total": 1, "by_rule": {"S001": 1},
                  "by_severity": {"error": 1}}
    }

``findings`` is sorted by ``(path, line, col, rule)`` so diffs are stable.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any

from repro.check.engine import CheckResult, all_rules

__all__ = ["render_json", "render_text", "rule_table"]

JSON_SCHEMA_VERSION = 1


def render_text(result: CheckResult) -> str:
    """``path:line:col: RULE severity message`` lines plus a summary line."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} {f.severity}: {f.message}"
        for f in result.findings
    ]
    n = len(result.findings)
    noun = "finding" if n == 1 else "findings"
    lines.append(f"{n} {noun} in {result.files_checked} files")
    return "\n".join(lines)


def render_json(result: CheckResult) -> str:
    doc: dict[str, Any] = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "findings": [f.to_json() for f in result.findings],
        "summary": {
            "total": len(result.findings),
            "by_rule": dict(sorted(Counter(f.rule for f in result.findings).items())),
            "by_severity": dict(sorted(Counter(f.severity for f in result.findings).items())),
        },
    }
    return json.dumps(doc, indent=2, sort_keys=False)


def rule_table() -> str:
    """One line per registered rule: ``id  severity  name — description``."""
    lines = []
    for rule in all_rules():
        scope = f" [{'/'.join(rule.scope)}]" if rule.scope else ""
        lines.append(f"{rule.id}  {rule.severity:7s} {rule.name}{scope}: {rule.description}")
    return "\n".join(lines)
