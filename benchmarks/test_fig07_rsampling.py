"""Fig 7 — efficiency of R-sampling, and Fig 10 — effect of k.

Both studies share the per-frame motion fields of the KITTI-like clips
(computed once, module-scoped), exactly as they would share the encoder's
MV output on a real agent.
"""

import numpy as np
import pytest
from conftest import CONFIGS

from repro.experiments import collect_fields, print_table, run_fig07, run_fig10


@pytest.fixture(scope="module")
def fields():
    return collect_fields(CONFIGS["fig07"])


def test_fig07_rsampling_accuracy(bench_once, fields):
    study = bench_once(run_fig07, CONFIGS["fig07"], data=fields)
    rows = []
    for name in ("r30", "rand30", "rand500"):
        ex, ey = study.errors_x[name], study.errors_y[name]
        rows.append([name, float(np.median(ex)), float(np.median(ey)), float(np.percentile(ey, 90))])
    print_table(
        ["strategy", "med |err w_x| (rad/s)", "med |err w_y|", "p90 |err w_y|"],
        rows,
        title="Fig 7a/b — rotation-speed estimation error by sampling strategy",
    )
    times, est, gt = study.series
    print_table(
        ["t", "w_y estimated", "w_y truth"],
        [[t, e, g] for t, e, g in list(zip(times, est, gt))[:: max(len(times) // 15, 1)]],
        title="Fig 7c — estimated vs true w_y over one clip (subsampled)",
    )
    med = {n: float(np.median(study.errors_y[n])) for n in study.errors_y}
    # Paper shape: R-sampling with 30 points is at least as accurate as
    # random sampling with 30, and competitive with random-500.
    assert med["r30"] <= med["rand30"] * 1.05
    assert med["r30"] <= med["rand500"] * 1.75


def test_fig10_k_sweep(bench_once, fields):
    ks = list(range(10, 101, 10))
    sweep = bench_once(run_fig10, CONFIGS["fig07"], ks=ks, data=fields)
    print_table(
        ["k", "median |err w| (rad/s)", "estimation time (ms)"],
        [[k, e, t * 1000] for k, e, t in zip(sweep.ks, sweep.errors, sweep.times)],
        title="Fig 10 — rotation error and RANSAC time vs k",
    )
    # Paper shape: error shrinks (then converges) as k grows; time grows.
    first, last = np.mean(sweep.errors[:3]), np.mean(sweep.errors[-3:])
    assert last <= first * 1.1
    assert np.mean(sweep.times[-3:]) >= np.mean(sweep.times[:3]) * 0.9
