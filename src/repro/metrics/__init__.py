"""Live windowed telemetry for the streaming runtime.

Three pieces, all driven by *virtual* time so telemetry inherits the
runtime's worker-count-invariance:

- :class:`MetricsRegistry` — label-aware Counter / Gauge / Histogram
  instruments aggregated into fixed windows of simulated time, with
  deterministic fixed-bucket quantiles (:mod:`repro.metrics.hist`) and a
  no-op :data:`NULL_REGISTRY` default mirroring ``NULL_TRACER``;
- :class:`FlightRecorder` — a bounded ring of frame-lifecycle events
  dumping deterministic JSONL post-mortems when an anomaly trigger fires
  (deadline-miss burst, sustained queue saturation, sanitizer errors);
- exporters and consumers — metrics JSONL + OpenMetrics-style text
  (:mod:`repro.metrics.export`), the ``repro top`` dashboard renderer
  (:mod:`repro.metrics.top`) and ``repro report --metrics`` tables.

See the "Observability" sections of README.md / API.md.
"""

from repro.metrics.export import (
    MetricsDoc,
    read_metrics_jsonl,
    registry_digest,
    snapshot_lines,
    to_openmetrics,
    write_metrics_jsonl,
)
from repro.metrics.flight import (
    NULL_FLIGHT_RECORDER,
    FlightEvent,
    FlightRecorder,
    NullFlightRecorder,
    write_flight_jsonl,
)
from repro.metrics.hist import (
    ExactSum,
    FixedBucketHistogram,
    bucket_quantile,
    linear_buckets,
    log_buckets,
)
from repro.metrics.registry import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullInstrument,
    NullRegistry,
)
from repro.metrics.top import render_top, series_rows

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "NULL_FLIGHT_RECORDER",
    "NULL_REGISTRY",
    "Counter",
    "ExactSum",
    "FixedBucketHistogram",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsDoc",
    "MetricsRegistry",
    "NullFlightRecorder",
    "NullInstrument",
    "NullRegistry",
    "bucket_quantile",
    "linear_buckets",
    "log_buckets",
    "read_metrics_jsonl",
    "registry_digest",
    "render_top",
    "series_rows",
    "snapshot_lines",
    "to_openmetrics",
    "write_metrics_jsonl",
]
