"""Runtime-compiled C backend for the pattern-search sweeps and MC.

The pattern searches (DIA/HEX/UMH) are *sequentially* dependent per block:
each candidate offset is evaluated against the block's current best, which
the previous offset may just have updated.  NumPy can only batch across
blocks per offset — hundreds of small fancy-indexed gathers per frame —
while C walks each block's whole descent in one cache-resident loop.

Bit-exactness is engineered, then verified:

- SAD reductions replicate NumPy's pairwise summation exactly (8-way
  unrolled 128-element blocks, recursive halving above; the same algorithm
  ``ndarray.sum`` applies to each contiguous 256-element block row).
- MV bit costs use integer bit-length (``63 - clzll``) — exactly
  ``floor(log2(2|v| + 1))`` for the small odd integers involved.
- Motion compensation orders every multiply/add exactly as the reference's
  vectorised expression, and the source is compiled with
  ``-ffp-contract=off`` so no FMA contraction can change a rounding.
- At activation a self-probe runs every C kernel against the codec
  reference on adversarial random inputs; any mismatch marks the backend
  unavailable (the registry then falls back to the reference).

The shared object is compiled once per source hash into a per-user cache
directory with the system ``cc``/``gcc``; hosts without a C compiler simply
report the backend unavailable.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.kernels import KernelBackend

__all__ = ["CExtBackend"]

_C_SOURCE = r"""
#include <math.h>
#include <stddef.h>
#include <stdint.h>

/* NumPy's pairwise summation (scalar form): n<8 naive, n<=128 8-way
 * unrolled with the ((r0+r1)+(r2+r3))+((r4+r5)+(r6+r7)) combine, larger n
 * recursively halved to a multiple of 8.  Bit-identical to
 * ndarray.sum over a contiguous double row (verified by self-probe). */
static double pairwise(const double *a, size_t n) {
    if (n < 8) {
        double res = 0.0;
        for (size_t i = 0; i < n; i++) res += a[i];
        return res;
    }
    if (n <= 128) {
        double r0 = a[0], r1 = a[1], r2 = a[2], r3 = a[3];
        double r4 = a[4], r5 = a[5], r6 = a[6], r7 = a[7];
        size_t i;
        for (i = 8; i < n - (n % 8); i += 8) {
            r0 += a[i + 0]; r1 += a[i + 1]; r2 += a[i + 2]; r3 += a[i + 3];
            r4 += a[i + 4]; r5 += a[i + 5]; r6 += a[i + 6]; r7 += a[i + 7];
        }
        double res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7));
        for (; i < n; i++) res += a[i];
        return res;
    }
    size_t n2 = n / 2;
    n2 -= n2 % 8;
    return pairwise(a, n2) + pairwise(a + n2, n - n2);
}

void pairwise_rows(const double *a, int64_t rows, int64_t n, double *out) {
    for (int64_t r = 0; r < rows; r++) out[r] = pairwise(a + (size_t)r * n, (size_t)n);
}

/* |cur - ref| over one block, then the NumPy-pairwise reduction.  The
 * scratch buffer makes the reduction read a contiguous row exactly like
 * the evaluator's (m, b, b) difference buffer. */
static double sad_block(const double *cur, const double *refp, int64_t ref_stride,
                        int64_t block, double *scratch) {
    int64_t k = 0;
    for (int64_t i = 0; i < block; i++) {
        const double *r = refp + i * ref_stride;
        const double *c = cur + i * block;
        for (int64_t j = 0; j < block; j++) scratch[k++] = fabs(c[j] - r[j]);
    }
    return pairwise(scratch, (size_t)(block * block));
}

/* floor(log2(2|v| + 1)) for small integers: the bit length of the odd
 * integer 2|v|+1, minus one.  Exact — no transcendental involved. */
static double mv_bits(int64_t dx, int64_t dy, int64_t px, int64_t py) {
    uint64_t tx = 2ull * (uint64_t)llabs(dx - px) + 1ull;
    uint64_t ty = 2ull * (uint64_t)llabs(dy - py) + 1ull;
    int ex = 63 - __builtin_clzll(tx);
    int ey = 63 - __builtin_clzll(ty);
    return 2.0 + 2.0 * ((double)ex + (double)ey);
}

/* Pattern descent for every block: candidate offsets relative to the
 * block's current MV, immediate accept on cand < cost - 1e-9, repeat until
 * a full pattern sweep improves nothing (or max_iter).  Identical
 * per-block semantics to the reference's batched active-set loop — blocks
 * are independent, so iterating block-major is a pure reordering. */
void descend(const double *cur_blocks, const double *ref_pad, int64_t rp_stride,
             const int64_t *by, const int64_t *bx, int64_t pad, int64_t n,
             int64_t block, const int64_t *pattern, int64_t npat,
             int64_t *dx, int64_t *dy, double *cost,
             const int64_t *pred_x, const int64_t *pred_y,
             double lambda_mv, int64_t rng, int64_t max_iter, double *scratch) {
    for (int64_t b = 0; b < n; b++) {
        const double *cur = cur_blocks + b * block * block;
        int64_t bdx = dx[b], bdy = dy[b];
        double bcost = cost[b];
        int64_t px = pred_x[b], py = pred_y[b];
        for (int64_t it = 0; it < max_iter; it++) {
            int improved = 0;
            for (int64_t p = 0; p < npat; p++) {
                int64_t cx = bdx + pattern[2 * p];
                int64_t cy = bdy + pattern[2 * p + 1];
                if (cx < -rng || cx > rng || cy < -rng || cy > rng) continue;
                const double *r =
                    ref_pad + (pad + by[b] - cy) * rp_stride + (pad + bx[b] - cx);
                double sad = sad_block(cur, r, rp_stride, block, scratch);
                double cand = sad + lambda_mv * mv_bits(cx, cy, px, py);
                if (cand < bcost - 1e-9) {
                    bdx = cx; bdy = cy; bcost = cand; improved = 1;
                }
            }
            if (!improved) break;
        }
        dx[b] = bdx; dy[b] = bdy; cost[b] = bcost;
    }
}

/* One pass of absolute candidates (the HEX/UMH seeding grid) for the
 * blocks in idx, against the zero predictor.  Offsets are pre-clipped by
 * construction (the grid never leaves the search window). */
void sweep_abs(const double *cur_blocks, const double *ref_pad, int64_t rp_stride,
               const int64_t *by, const int64_t *bx, int64_t pad,
               const int64_t *idx, int64_t m, int64_t block,
               const int64_t *offs, int64_t noffs,
               int64_t *dx, int64_t *dy, double *cost,
               double lambda_mv, double *scratch) {
    for (int64_t k = 0; k < m; k++) {
        int64_t b = idx[k];
        const double *cur = cur_blocks + b * block * block;
        int64_t bdx = dx[b], bdy = dy[b];
        double bcost = cost[b];
        for (int64_t p = 0; p < noffs; p++) {
            int64_t cx = offs[2 * p], cy = offs[2 * p + 1];
            const double *r =
                ref_pad + (pad + by[b] - cy) * rp_stride + (pad + bx[b] - cx);
            double sad = sad_block(cur, r, rp_stride, block, scratch);
            double cand = sad + lambda_mv * mv_bits(cx, cy, 0, 0);
            if (cand < bcost - 1e-9) { bdx = cx; bdy = cy; bcost = cand; }
        }
        dx[b] = bdx; dy[b] = bdy; cost[b] = bcost;
    }
}

/* One pass of relative offsets, clipped into the window before both the
 * SAD and the bit cost (UMH cross/multi-hexagon semantics). */
void sweep_rel_clip(const double *cur_blocks, const double *ref_pad, int64_t rp_stride,
                    const int64_t *by, const int64_t *bx, int64_t pad,
                    const int64_t *idx, int64_t m, int64_t block,
                    const int64_t *offs, int64_t noffs,
                    int64_t *dx, int64_t *dy, double *cost,
                    const int64_t *pred_x, const int64_t *pred_y,
                    double lambda_mv, int64_t rng, double *scratch) {
    for (int64_t k = 0; k < m; k++) {
        int64_t b = idx[k];
        const double *cur = cur_blocks + b * block * block;
        int64_t bdx = dx[b], bdy = dy[b];
        double bcost = cost[b];
        int64_t px = pred_x[b], py = pred_y[b];
        for (int64_t p = 0; p < noffs; p++) {
            int64_t cx = bdx + offs[2 * p], cy = bdy + offs[2 * p + 1];
            if (cx < -rng) cx = -rng; if (cx > rng) cx = rng;
            if (cy < -rng) cy = -rng; if (cy > rng) cy = rng;
            const double *r =
                ref_pad + (pad + by[b] - cy) * rp_stride + (pad + bx[b] - cx);
            double sad = sad_block(cur, r, rp_stride, block, scratch);
            double cand = sad + lambda_mv * mv_bits(cx, cy, px, py);
            if (cand < bcost - 1e-9) { bdx = cx; bdy = cy; bcost = cand; }
        }
        dx[b] = bdx; dy[b] = bdy; cost[b] = bcost;
    }
}

/* Motion compensation: per-block bilinear gather/blend from the padded
 * reference, float64 arithmetic in the reference's exact operation order
 * (weights formed as (1-ay)*(1-ax) etc., taps combined left-to-right),
 * final cast to float32. */
void motion_comp(const double *ref_pad, int64_t rp_stride,
                 const double *mvx, const double *mvy,
                 int64_t rng, int64_t rows, int64_t cols, int64_t block,
                 float *out, int64_t out_stride) {
    for (int64_t r = 0; r < rows; r++) {
        for (int64_t c = 0; c < cols; c++) {
            int64_t b = r * cols + c;
            double vx = mvx[b], vy = mvy[b];
            double fdx = floor(vx), fdy = floor(vy);
            double ax = vx - fdx, ay = vy - fdy;
            const double *p00 = ref_pad + (r * block - (int64_t)fdy + rng) * rp_stride
                                + (c * block - (int64_t)fdx + rng);
            float *o = out + r * block * out_stride + c * block;
            if (ax == 0.0 && ay == 0.0) {
                for (int64_t i = 0; i < block; i++)
                    for (int64_t j = 0; j < block; j++)
                        o[i * out_stride + j] = (float)p00[i * rp_stride + j];
            } else {
                double w00 = (1.0 - ay) * (1.0 - ax);
                double w01 = (1.0 - ay) * ax;
                double w10 = ay * (1.0 - ax);
                double w11 = ay * ax;
                for (int64_t i = 0; i < block; i++) {
                    const double *q00 = p00 + i * rp_stride;
                    const double *q10 = q00 - rp_stride;
                    for (int64_t j = 0; j < block; j++) {
                        double v = ((w00 * q00[j] + w01 * q00[j - 1])
                                    + w10 * q10[j]) + w11 * q10[j - 1];
                        o[i * out_stride + j] = (float)v;
                    }
                }
            }
        }
    }
}
"""

#: Compile flags: -ffp-contract=off forbids FMA contraction (a contracted
#: a*b+c rounds once, NumPy's separate ops round twice); -O2 never
#: reassociates FP without -ffast-math, so the operation order above is
#: what runs.
_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-math-errno"]

_I64 = ctypes.c_int64
_PTR = ctypes.c_void_p
_F64 = ctypes.c_double


def _build_library() -> ctypes.CDLL | None:
    """Compile (or reuse) the shared object; None when no compiler works."""
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    cache = Path(tempfile.gettempdir()) / f"repro-kernels-{os.getuid()}" / digest
    so_path = cache / "kernels.so"
    if not so_path.exists():
        try:
            cache.mkdir(parents=True, exist_ok=True)
            c_path = cache / "kernels.c"
            c_path.write_text(_C_SOURCE)
            tmp = cache / "kernels.so.tmp"
            last_err: Exception | None = None
            for compiler in ("cc", "gcc", "clang"):
                try:
                    subprocess.run(
                        [compiler, *_CFLAGS, str(c_path), "-o", str(tmp), "-lm"],
                        check=True,
                        capture_output=True,
                        timeout=120,
                    )
                    os.replace(tmp, so_path)
                    break
                except (OSError, subprocess.SubprocessError) as exc:
                    last_err = exc
            else:
                raise RuntimeError(f"no working C compiler: {last_err}")
        except (OSError, RuntimeError):
            return None
    try:
        lib = ctypes.CDLL(str(so_path))
    except OSError:
        return None
    lib.pairwise_rows.argtypes = [_PTR, _I64, _I64, _PTR]
    lib.descend.argtypes = [_PTR, _PTR, _I64, _PTR, _PTR, _I64, _I64, _I64,
                            _PTR, _I64, _PTR, _PTR, _PTR, _PTR, _PTR,
                            _F64, _I64, _I64, _PTR]
    lib.sweep_abs.argtypes = [_PTR, _PTR, _I64, _PTR, _PTR, _I64, _PTR, _I64,
                              _I64, _PTR, _I64, _PTR, _PTR, _PTR, _F64, _PTR]
    lib.sweep_rel_clip.argtypes = [_PTR, _PTR, _I64, _PTR, _PTR, _I64, _PTR,
                                   _I64, _I64, _PTR, _I64, _PTR, _PTR, _PTR,
                                   _PTR, _PTR, _F64, _I64, _PTR]
    lib.motion_comp.argtypes = [_PTR, _I64, _PTR, _PTR, _I64, _I64, _I64,
                                _I64, _PTR, _I64]
    return lib


def _as_i64(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.int64)


class CExtBackend(KernelBackend):
    """Compiled-C sweeps + motion compensation, self-probed for exactness."""

    name = "cext"

    def __init__(self) -> None:
        self._lib: ctypes.CDLL | None = None
        self._checked = False
        self._reason: str | None = None
        self._scratch = np.empty(64 * 64, dtype=np.float64)

    # -- availability -----------------------------------------------------

    def available(self) -> bool:
        if not self._checked:
            self._checked = True
            self._lib = _build_library()
            if self._lib is None:
                self._reason = "no C compiler (cc/gcc/clang) or dlopen failed"
            elif not self._self_probe():
                self._lib = None
                self._reason = "self-probe found a bitwise mismatch vs the reference"
        if self._lib is not None:
            # Hooks are bound only once the probe has passed.
            self.descend_sweep = self._descend_sweep
            self.seed_sweep = self._seed_sweep
            self.offset_sweep = self._offset_sweep
            self.motion_compensate = self._motion_compensate
        return self._lib is not None

    def why_unavailable(self) -> str | None:
        return self._reason

    def warm(self) -> None:
        self.available()

    # -- kernels ----------------------------------------------------------

    def _ensure_scratch(self, block: int) -> np.ndarray:
        if self._scratch.size < block * block:
            self._scratch = np.empty(block * block, dtype=np.float64)
        return self._scratch

    def _descend_sweep(self, ev, pattern, dx, dy, cost, pred_x, pred_y,
                       lambda_mv, *, max_iter=16):
        lib = self._lib
        pat = _as_i64(np.asarray(pattern).reshape(-1, 2))
        scratch = self._ensure_scratch(ev.block)
        lib.descend(
            ev.cur_blocks.ctypes.data, ev.ref_pad.ctypes.data, ev.ref_pad.shape[1],
            ev.by.ctypes.data, ev.bx.ctypes.data, ev.pad, ev.n, ev.block,
            pat.ctypes.data, pat.shape[0],
            dx.ctypes.data, dy.ctypes.data, cost.ctypes.data,
            pred_x.ctypes.data, pred_y.ctypes.data,
            float(lambda_mv), ev.search_range, int(max_iter), scratch.ctypes.data,
        )
        return dx, dy, cost

    def _seed_sweep(self, ev, idx, offsets, dx, dy, cost, lambda_mv):
        lib = self._lib
        offs = _as_i64(np.asarray(offsets).reshape(-1, 2))
        idx = _as_i64(idx)
        scratch = self._ensure_scratch(ev.block)
        lib.sweep_abs(
            ev.cur_blocks.ctypes.data, ev.ref_pad.ctypes.data, ev.ref_pad.shape[1],
            ev.by.ctypes.data, ev.bx.ctypes.data, ev.pad,
            idx.ctypes.data, idx.shape[0], ev.block,
            offs.ctypes.data, offs.shape[0],
            dx.ctypes.data, dy.ctypes.data, cost.ctypes.data,
            float(lambda_mv), scratch.ctypes.data,
        )
        return dx, dy, cost

    def _offset_sweep(self, ev, idx, offsets, dx, dy, cost, pred_x, pred_y, lambda_mv):
        lib = self._lib
        offs = _as_i64(np.asarray(offsets).reshape(-1, 2))
        idx = _as_i64(idx)
        scratch = self._ensure_scratch(ev.block)
        lib.sweep_rel_clip(
            ev.cur_blocks.ctypes.data, ev.ref_pad.ctypes.data, ev.ref_pad.shape[1],
            ev.by.ctypes.data, ev.bx.ctypes.data, ev.pad,
            idx.ctypes.data, idx.shape[0], ev.block,
            offs.ctypes.data, offs.shape[0],
            dx.ctypes.data, dy.ctypes.data, cost.ctypes.data,
            pred_x.ctypes.data, pred_y.ctypes.data,
            float(lambda_mv), ev.search_range, scratch.ctypes.data,
        )
        return dx, dy, cost

    def _motion_compensate(self, reference, mv, *, block=16):
        reference = np.asarray(reference, dtype=np.float32)
        rows, cols = mv.shape[0], mv.shape[1]
        rng = int(np.ceil(np.abs(mv).max())) + 2
        ref_pad = np.pad(reference.astype(np.float64), rng, mode="edge")
        mvx = np.ascontiguousarray(mv[..., 0], dtype=np.float64).ravel()
        mvy = np.ascontiguousarray(mv[..., 1], dtype=np.float64).ravel()
        out = np.empty(reference.shape, dtype=np.float32)
        self._lib.motion_comp(
            ref_pad.ctypes.data, ref_pad.shape[1],
            mvx.ctypes.data, mvy.ctypes.data,
            rng, rows, cols, block, out.ctypes.data, out.shape[1],
        )
        return out

    # -- self-probe -------------------------------------------------------

    def _self_probe(self) -> bool:
        """Bitwise-compare every C kernel against the codec reference."""
        try:
            from repro.codec.motion import (
                _BlockSadEvaluator,
                _descend_reference,
                _motion_compensate_reference,
                _mv_bits_vec,
                _SMALL_DIAMOND,
            )
        except ImportError:
            return False
        gen = np.random.default_rng(0xCE)
        # Pairwise summation, adversarial magnitudes.
        for n in (49, 64, 200, 256, 1024):
            a = np.exp(gen.normal(0.0, 12.0, size=(64, n)))
            out = np.empty(64, dtype=np.float64)
            self._lib.pairwise_rows(
                np.ascontiguousarray(a).ctypes.data, 64, n, out.ctypes.data
            )
            if not np.array_equal(out, a.reshape(64, n).sum(axis=1)):
                return False
        # Full descent + sweeps + MC against the reference implementations.
        for block, shape in ((16, (96, 128)), (8, (48, 64))):
            ref = gen.uniform(0, 255, size=shape).astype(np.float32)
            cur = np.clip(ref + gen.normal(0, 9, size=shape), 0, 255).astype(np.float32)
            ev_a = _BlockSadEvaluator(cur, ref, 10, block)
            ev_b = _BlockSadEvaluator(cur, ref, 10, block)
            zero = np.zeros(ev_a.n, dtype=np.int64)
            cost0 = ev_a.sad_int(zero, zero) + 4.0 * _mv_bits_vec(zero, zero, zero, zero)
            pred = gen.integers(-3, 4, size=ev_a.n)
            args_a = (zero.copy(), zero.copy(), cost0.copy(), pred, -pred, 4.0)
            args_b = (zero.copy(), zero.copy(), cost0.copy(), pred, -pred, 4.0)
            ra = _descend_reference(ev_a, _SMALL_DIAMOND, *args_a)
            rb = self._descend_sweep(ev_b, _SMALL_DIAMOND, *args_b)
            if not all(np.array_equal(x, y) for x, y in zip(ra, rb)):
                return False
            offs = [(o, p) for o in (-8, -3, 5) for p in (-6, 2, 7)]
            idx = np.flatnonzero(gen.uniform(size=ev_a.n) < 0.7)
            sa = (ra[0].copy(), ra[1].copy(), ra[2].copy())
            sb = (ra[0].copy(), ra[1].copy(), ra[2].copy())
            _probe_seed_reference(ev_a, idx, offs, *sa, 4.0)
            self._seed_sweep(ev_b, idx, offs, *sb, 4.0)
            if not all(np.array_equal(x, y) for x, y in zip(sa, sb)):
                return False
            ua = (sa[0].copy(), sa[1].copy(), sa[2].copy())
            ub = (sa[0].copy(), sa[1].copy(), sa[2].copy())
            _probe_rel_reference(ev_a, idx, offs, *ua, pred, -pred, 4.0)
            self._offset_sweep(ev_b, idx, offs, *ub, pred, -pred, 4.0)
            if not all(np.array_equal(x, y) for x, y in zip(ua, ub)):
                return False
            mv = (gen.integers(-28, 29, size=(shape[0] // block, shape[1] // block, 2))
                  * 0.25).astype(np.float32)
            if not np.array_equal(
                self._motion_compensate(ref, mv, block=block),
                _motion_compensate_reference(ref, mv, block=block),
            ):
                return False
        return True


def _probe_seed_reference(ev, idx, offsets, dx, dy, cost, lambda_mv):
    """Reference semantics of the absolute seeding sweep (probe only)."""
    from repro.codec.motion import _mv_bits_vec

    zero = np.zeros(idx.size, dtype=np.int64)
    for ox, oy in offsets:
        cdx = np.full(idx.size, ox, dtype=np.int64)
        cdy = np.full(idx.size, oy, dtype=np.int64)
        sad = ev.sad_int_subset(idx, cdx, cdy)
        cand = sad + lambda_mv * _mv_bits_vec(cdx, cdy, zero, zero)
        better = cand < cost[idx] - 1e-9
        sel = idx[better]
        dx[sel] = ox
        dy[sel] = oy
        cost[sel] = cand[better]


def _probe_rel_reference(ev, idx, offsets, dx, dy, cost, pred_x, pred_y, lambda_mv):
    """Reference semantics of the relative clipped sweep (probe only)."""
    from repro.codec.motion import _mv_bits_vec

    rng = ev.search_range
    for ox, oy in offsets:
        cx = np.clip(dx[idx] + ox, -rng, rng)
        cy = np.clip(dy[idx] + oy, -rng, rng)
        sad = ev.sad_int_subset(idx, cx, cy)
        cand = sad + lambda_mv * _mv_bits_vec(cx, cy, pred_x[idx], pred_y[idx])
        better = cand < cost[idx] - 1e-9
        sel = idx[better]
        dx[sel] = cx[better]
        dy[sel] = cy[better]
        cost[sel] = cand[better]
