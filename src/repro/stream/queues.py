"""Bounded uplink queue with backpressure policies, in virtual time.

The queue sits between the encode stage and the uplink.  It is a
discrete-event simulator that mirrors :class:`~repro.network.link.
UplinkSimulator` arithmetic exactly — an internal untraced simulator seals
each admitted job FIFO with the same ``start = max(busy, enqueue)`` /
head-of-line rules — and layers a capacity bound with one of three
policies on top:

``block``
    A full queue stalls the encoder until a slot frees.  Link timing is
    *identical* to the unbounded FIFO (the link is busy for at least as
    long as the stall), so this policy is always batch-equivalent; the
    stall shows up only in the ``blocked`` accounting.
``degrade-qp``
    A frame arriving at a full queue is re-encoded coarser: its payload
    shrinks by ``degrade_factor`` and it waits for a slot.  Smaller
    payloads drain faster, trading quality for latency.
``drop-oldest``
    A frame arriving at a full queue evicts the oldest *not yet
    transmitting* job; if every occupant is already on the wire, the
    newcomer itself is refused (tail drop).

Why "truth" vs "belief": the synchronous schemes consume each
transmission result the moment they offer the frame — they cannot learn
about a later eviction.  So the scheme runs against an optimistic
*belief* uplink (plain FIFO arithmetic), while this queue keeps the
*truth* timeline; after the run the :class:`~repro.stream.runner.
StreamRunner` reconciles the scheme's results against the truth (a
frame the agent believed delivered but the queue evicted becomes a stale
frame).  A real mobile agent has the same epistemics — it also learns of
queue evictions only after the fact.  With no capacity bound the two
timelines coincide and streaming output is bit-identical to batch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.flight import NULL_FLIGHT_RECORDER
from repro.metrics.registry import DEFAULT_LATENCY_BUCKETS, NULL_REGISTRY
from repro.network.link import UplinkSimulator
from repro.network.trace import BandwidthTrace
from repro.stream.messages import QueueOutcome

__all__ = ["Admission", "BackpressureQueue", "POLICIES"]

POLICIES = ("block", "degrade-qp", "drop-oldest")

_INF = float("inf")


@dataclass(frozen=True)
class Admission:
    """What :meth:`BackpressureQueue.submit` tells the encode stage.

    ``size_bytes`` is the payload the uplink should actually carry
    (reduced under ``degrade-qp``); ``blocked`` is how long the encoder
    stalled for a slot in simulated seconds.
    """

    seq: int
    admitted: bool
    degraded: bool
    size_bytes: int
    admit_time: float
    blocked: float


@dataclass
class _Pending:
    seq: int
    frame_index: int
    size_bytes: int
    size_eff: int
    enqueue_time: float
    admit_time: float
    blocked: float
    degraded: bool


class BackpressureQueue:
    """Capacity-bounded FIFO between encoder and uplink, in virtual time.

    Not thread-safe by design: every mutation happens on the agent
    thread (via the streaming uplink) or after the run ends; sealed
    outcomes are published through the optional ``on_seal`` callback,
    which may hand them to another thread.

    Parameters
    ----------
    trace:
        Bandwidth trace the truth timeline drains at.
    capacity:
        Maximum jobs the queue holds at once; ``None`` means unbounded
        (every policy degenerates to plain FIFO — the batch-equivalent
        configuration).
    policy:
        One of :data:`POLICIES`.
    degrade_factor:
        Payload multiplier for ``degrade-qp`` admissions at a full queue.
    hol_timeout:
        Head-of-line timer, as in :class:`UplinkSimulator`.
    on_seal:
        Called with each :class:`QueueOutcome` the moment it is sealed.
    metrics:
        A :class:`~repro.metrics.MetricsRegistry` (default: the shared
        no-op).  Instruments are hoisted here — created once per queue,
        never inside the per-frame path (lint rule S015) — and record
        only virtual-time quantities, so timelines are identical for any
        worker count.
    flight:
        A :class:`~repro.metrics.FlightRecorder` (default: the shared
        no-op) fed every job lifecycle event; sustained saturation
        (``flight.saturation_burst`` consecutive submissions finding the
        queue full) fires its trigger.
    """

    def __init__(
        self,
        trace: BandwidthTrace,
        *,
        capacity: int | None = None,
        policy: str = "block",
        degrade_factor: float = 0.5,
        hol_timeout: float | None = None,
        on_seal=None,
        metrics=NULL_REGISTRY,
        flight=NULL_FLIGHT_RECORDER,
    ):
        if policy not in POLICIES:
            raise ValueError(f"unknown backpressure policy {policy!r}; expected one of {POLICIES}")
        if capacity is not None and capacity < 1:
            raise ValueError(f"queue capacity must be >= 1 or None, got {capacity}")
        if not 0.0 < degrade_factor <= 1.0:
            raise ValueError(f"degrade_factor must be in (0, 1], got {degrade_factor}")
        self.capacity = capacity
        self.policy = policy
        self.degrade_factor = float(degrade_factor)
        self._inner = UplinkSimulator(trace, hol_timeout=hol_timeout)
        self._on_seal = on_seal
        self._pending: list[_Pending] = []
        self._sealed: dict[int, QueueOutcome] = {}
        self._abandoned: set[int] = set()
        self._order: list[int] = []
        self._next_seq = 0
        self._watermark = 0.0
        self._blocked_total = 0.0
        self._metrics = metrics
        self._flight = flight
        self._full_streak = 0
        # Instruments hoisted out of the per-frame path (S015): the null
        # registry hands back shared inert singletons, so this costs
        # nothing when metrics are off.
        self._m_depth = metrics.gauge(
            "stream_queue_depth", help="jobs holding an uplink queue slot")
        self._m_blocked = metrics.counter(
            "stream_queue_blocked_seconds", unit="s",
            help="simulated seconds the encoder stalled for a slot")
        self._m_occupancy = metrics.counter(
            "stream_queue_occupancy_seconds", unit="s",
            help="slot-holding time per sealed job (admit to release)")
        self._m_outcomes = metrics.counter(
            "stream_queue_outcomes", help="sealed jobs by status/reason")
        self._m_wait = metrics.histogram(
            "stream_queue_wait_seconds", buckets=DEFAULT_LATENCY_BUCKETS, unit="s",
            help="enqueue-to-wire wait of transmitted jobs")
        self._m_service = metrics.histogram(
            "stream_uplink_service_seconds", buckets=DEFAULT_LATENCY_BUCKETS, unit="s",
            help="on-the-wire transmission time of delivered jobs")
        self._m_goodput = metrics.counter(
            "stream_uplink_sent_bytes", unit="bytes",
            help="bytes that actually crossed the link (goodput)")

    # ------------------------------------------------------------- submit

    def submit(self, frame_index: int, size_bytes: int, enqueue_time: float) -> Admission:
        """Offer one encoded frame; returns how (whether) it was admitted."""
        seq = self._next_seq
        self._next_seq += 1
        self._order.append(seq)
        self._advance(enqueue_time)
        t = enqueue_time

        size_eff = int(size_bytes)
        degraded = False
        admit_time = t
        blocked = 0.0
        full = self.capacity is not None and self._occupants(t) >= self.capacity
        if self._flight.enabled:
            self._flight.record("submit", t, seq=seq, frame=frame_index,
                                bytes=int(size_bytes), full=full)
            self._full_streak = self._full_streak + 1 if full else 0
            if full and self._full_streak == self._flight.saturation_burst:
                self._flight.trigger(
                    "queue-saturation", t,
                    streak=self._full_streak, capacity=self.capacity,
                )
        if full:
            if self.policy == "drop-oldest":
                if self._pending:
                    self._evict(self._pending.pop(0), at=t)
                else:
                    # Every occupant is already on the wire: refuse the
                    # newcomer instead (tail drop).
                    self._seal(
                        QueueOutcome(
                            seq=seq, frame_index=frame_index,
                            size_bytes=int(size_bytes), sent_bytes=0,
                            enqueue_time=t, admit_time=t, start_time=t,
                            finish_time=_INF, release_time=t,
                            status="dropped", reason="capacity",
                        )
                    )
                    return Admission(seq, False, False, 0, t, 0.0)
            else:
                admit_time = self._slot_free_time(t)
                blocked = admit_time - t
                self._blocked_total += blocked
                if self.policy == "degrade-qp":
                    size_eff = max(1, int(round(size_bytes * self.degrade_factor)))
                    degraded = True

        self._pending.append(
            _Pending(
                seq=seq, frame_index=frame_index, size_bytes=int(size_bytes),
                size_eff=size_eff, enqueue_time=t, admit_time=admit_time,
                blocked=blocked, degraded=degraded,
            )
        )
        if self._metrics.enabled:
            self._m_depth.set(float(self._occupants(t)), at=t)
            if blocked:
                self._m_blocked.inc(blocked, at=t)
        return Admission(seq, True, degraded, size_eff, admit_time, blocked)

    def abandon(self, seq: int, at: float) -> None:
        """The agent gave this job up (its own head-of-line timer fired).

        Truth time first marches to ``at`` — if the job reaches the wire
        by then, the inner simulator seals it under its own rules (in the
        relaxed configuration that reproduces the batch HoL drop exactly,
        including the link staying busy until timer expiry).  Only a job
        still waiting at ``at`` is plucked out with its slot freed there;
        an already-sealed job keeps its seal and the abandonment is just
        remembered for reconciliation.
        """
        self._abandoned.add(seq)
        if self._flight.enabled:
            self._flight.record("abandon", at, seq=seq)
        self._advance(at)
        for i, job in enumerate(self._pending):
            if job.seq == seq:
                self._pending.pop(i)
                self._seal(
                    QueueOutcome(
                        seq=job.seq, frame_index=job.frame_index,
                        size_bytes=job.size_bytes, sent_bytes=0,
                        enqueue_time=job.enqueue_time, admit_time=job.admit_time,
                        start_time=at, finish_time=_INF, release_time=at,
                        status="dropped", reason="abandoned", blocked=job.blocked,
                    )
                )
                return

    # ------------------------------------------------------- time marching

    def _advance(self, t: float) -> None:
        """Seal every pending job whose transmission starts by ``t``."""
        if t > self._watermark:
            self._watermark = t
        t = self._watermark
        while self._pending:
            start = max(self._inner.busy_until, self._pending[0].enqueue_time)
            if start > t:
                break
            self._transmit(self._pending.pop(0))

    def _transmit(self, job: _Pending) -> None:
        tx = self._inner.transmit(job.seq, job.size_eff, job.enqueue_time)
        if tx.dropped:
            release = self._inner.busy_until  # timer expiry frees the link
            outcome = QueueOutcome(
                seq=job.seq, frame_index=job.frame_index,
                size_bytes=job.size_bytes, sent_bytes=0,
                enqueue_time=job.enqueue_time, admit_time=job.admit_time,
                start_time=tx.start_time, finish_time=_INF, release_time=release,
                status="dropped", reason="hol", blocked=job.blocked,
            )
        else:
            outcome = QueueOutcome(
                seq=job.seq, frame_index=job.frame_index,
                size_bytes=job.size_bytes, sent_bytes=job.size_eff,
                enqueue_time=job.enqueue_time, admit_time=job.admit_time,
                start_time=tx.start_time, finish_time=tx.finish_time,
                release_time=tx.finish_time,
                status="degraded" if job.degraded else "delivered",
                blocked=job.blocked,
            )
        self._seal(outcome)

    def _evict(self, job: _Pending, at: float) -> None:
        self._seal(
            QueueOutcome(
                seq=job.seq, frame_index=job.frame_index,
                size_bytes=job.size_bytes, sent_bytes=0,
                enqueue_time=job.enqueue_time, admit_time=job.admit_time,
                start_time=at, finish_time=_INF, release_time=at,
                status="dropped", reason="evicted", blocked=job.blocked,
            )
        )

    def _seal(self, outcome: QueueOutcome) -> None:
        self._sealed[outcome.seq] = outcome
        if self._metrics.enabled:
            o = outcome
            self._m_outcomes.labels(status=o.status, reason=o.reason).inc(1.0, at=o.release_time)
            self._m_occupancy.inc(o.release_time - o.admit_time, at=o.release_time)
            if o.status != "dropped":
                self._m_wait.observe(o.start_time - o.enqueue_time, at=o.start_time)
                self._m_service.observe(o.finish_time - o.start_time, at=o.finish_time)
                self._m_goodput.inc(float(o.sent_bytes), at=o.finish_time)
        if self._flight.enabled:
            self._flight.record(
                "seal", outcome.release_time, seq=outcome.seq,
                frame=outcome.frame_index, status=outcome.status,
                reason=outcome.reason, sent=outcome.sent_bytes,
            )
        if self._on_seal is not None:
            self._on_seal(outcome)

    # --------------------------------------------------------- occupancy

    def _occupants(self, t: float) -> int:
        """Jobs holding (or destined for) a slot at time ``t``.

        Pending jobs count even when the ``block`` policy scheduled their
        admission later — a newcomer queues *behind* them either way.  At
        most one sealed job can still be on the wire (FIFO), visible as
        ``busy_until > t``.
        """
        return len(self._pending) + (1 if self._inner.busy_until > t else 0)

    def _slot_free_time(self, t: float) -> float:
        """When occupancy next falls below capacity (forecast, no mutation)."""
        sim = self._inner.clone()
        releases: list[float] = []
        if sim.busy_until > t:
            releases.append(sim.busy_until)
        for job in self._pending:
            sim.transmit(job.seq, job.size_eff, job.enqueue_time)
            releases.append(sim.busy_until)
        need = len(releases) - (self.capacity - 1)
        if need <= 0:
            return t
        return max(t, releases[need - 1])

    # ------------------------------------------------------------- results

    def close(self) -> list[QueueOutcome]:
        """Seal every remaining job and return all outcomes in seq order."""
        while self._pending:
            self._transmit(self._pending.pop(0))
        return self.outcomes()

    def outcomes(self) -> list[QueueOutcome]:
        return [self._sealed[s] for s in self._order if s in self._sealed]

    def outcome_for(self, seq: int) -> QueueOutcome | None:
        return self._sealed.get(seq)

    def was_abandoned(self, seq: int) -> bool:
        return seq in self._abandoned

    @property
    def blocked_time(self) -> float:
        """Total simulated seconds the encoder stalled across all submits."""
        return self._blocked_total
