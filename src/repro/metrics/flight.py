"""Flight recorder: a bounded ring of frame-lifecycle events + triggers.

A post-mortem needs the *events leading up to* an anomaly, not the whole
run.  The recorder keeps the last ``capacity`` lifecycle events (queue
submits / evictions / refusals / abandons / seals, reconciled frame
verdicts) in a ring buffer; when an anomaly trigger fires — a
deadline-miss burst, sustained queue saturation, or a
:class:`~repro.check.SanitizeError` / :class:`~repro.check.
LockOrderError` — the current ring is snapshotted into a dump, which
:func:`write_flight_jsonl` serialises as deterministic JSONL.

Determinism: every event carries only virtual-time quantities and is
recorded from the streaming runtime's single-mutator seams (the queue
mutates on the agent thread; reconciliation is post-run), so the ring's
*content and order* — and therefore :meth:`FlightRecorder.digest` — are
bit-identical across runs and across worker counts.  The acceptance test
locks exactly that for the bursty-outage deadline-miss scenario.

:data:`NULL_FLIGHT_RECORDER` mirrors :data:`~repro.obs.tracer.
NULL_TRACER`: recording is a no-op and the triggers never fire, so the
default path pays one ``enabled`` check.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import deque
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "NULL_FLIGHT_RECORDER",
    "FlightEvent",
    "FlightRecorder",
    "NullFlightRecorder",
    "write_flight_jsonl",
]


@dataclass(frozen=True)
class FlightEvent:
    """One lifecycle event: ordinal (run-global), kind, virtual time, fields."""

    ordinal: int
    kind: str
    at: float
    fields: tuple[tuple[str, object], ...]

    def to_json(self) -> dict:
        obj: dict = {"i": self.ordinal, "kind": self.kind, "at": self.at}
        obj.update(self.fields)
        return obj


class FlightRecorder:
    """Bounded ring of :class:`FlightEvent` plus anomaly-triggered dumps.

    Parameters
    ----------
    capacity:
        Ring size — how many recent events a dump can look back over.
    deadline_burst:
        A trigger-worthy burst: this many late frames inside any
        ``burst_window`` consecutive frames at reconciliation.
    burst_window:
        Sliding window (in frames) the deadline burst is counted over.
    saturation_burst:
        Consecutive submissions finding the queue full that count as
        sustained saturation.
    max_dumps:
        Dumps retained (oldest evicted) so a pathological run stays
        bounded.
    """

    enabled = True

    def __init__(self, *, capacity: int = 512, deadline_burst: int = 4,
                 burst_window: int = 8, saturation_burst: int = 8,
                 max_dumps: int = 8):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if deadline_burst < 1 or burst_window < deadline_burst:
            raise ValueError(
                f"need 1 <= deadline_burst <= burst_window, got "
                f"{deadline_burst}/{burst_window}"
            )
        if saturation_burst < 1:
            raise ValueError(f"saturation_burst must be >= 1, got {saturation_burst}")
        self.capacity = int(capacity)
        self.deadline_burst = int(deadline_burst)
        self.burst_window = int(burst_window)
        self.saturation_burst = int(saturation_burst)
        self.max_dumps = int(max_dumps)
        self._lock = threading.Lock()
        self._ring: deque[FlightEvent] = deque(maxlen=self.capacity)
        self._recorded = 0
        self._dumps: list[dict] = []

    # ------------------------------------------------------------ recording

    def record(self, kind: str, at: float, **fields) -> None:
        """Append one lifecycle event (oldest falls off past capacity)."""
        with self._lock:
            event = FlightEvent(
                ordinal=self._recorded, kind=kind, at=float(at),
                fields=tuple(sorted(fields.items())),
            )
            self._recorded += 1
            self._ring.append(event)

    def trigger(self, reason: str, at: float, **detail) -> dict:
        """An anomaly fired: snapshot the ring into a post-mortem dump."""
        self.record("trigger", at, reason=reason, **detail)
        with self._lock:
            dump = {
                "reason": reason, "at": float(at),
                "detail": dict(sorted(detail.items())),
                "events": [e.to_json() for e in self._ring],
            }
            self._dumps.append(dump)
            if len(self._dumps) > self.max_dumps:
                self._dumps.pop(0)
            return dump

    # -------------------------------------------------------------- results

    @property
    def events(self) -> list[FlightEvent]:
        with self._lock:
            return list(self._ring)

    @property
    def recorded(self) -> int:
        """Total events ever recorded (>= len(events) once the ring wraps)."""
        with self._lock:
            return self._recorded

    @property
    def dumps(self) -> list[dict]:
        with self._lock:
            return list(self._dumps)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "recorded": self._recorded,
                "dumps": [dict(d) for d in self._dumps],
            }

    def digest(self) -> str:
        """SHA-256 over the canonical dump lines (virtual-time only)."""
        body = "\n".join(_dump_lines(self.snapshot()))
        return hashlib.sha256(body.encode("utf-8")).hexdigest()


class NullFlightRecorder:
    """Shared no-op recorder — the default everywhere."""

    enabled = False
    capacity = 0
    deadline_burst = 4
    burst_window = 8
    saturation_burst = 8
    __slots__ = ()

    def record(self, kind: str, at: float, **fields) -> None:
        pass

    def trigger(self, reason: str, at: float, **detail) -> dict:
        return {}

    @property
    def events(self) -> list:
        return []

    @property
    def recorded(self) -> int:
        return 0

    @property
    def dumps(self) -> list:
        return []

    def snapshot(self) -> dict:
        return {"capacity": 0, "recorded": 0, "dumps": []}

    def digest(self) -> str:
        body = "\n".join(_dump_lines(self.snapshot()))
        return hashlib.sha256(body.encode("utf-8")).hexdigest()


NULL_FLIGHT_RECORDER = NullFlightRecorder()


def _dump_lines(snapshot: dict) -> list[str]:
    """Canonical body lines: one per dump header, one per dumped event."""
    lines: list[str] = []
    for k, dump in enumerate(snapshot["dumps"]):
        lines.append(json.dumps(
            {"dump": k, "reason": dump["reason"], "at": dump["at"],
             "detail": dump["detail"], "n_events": len(dump["events"])},
            sort_keys=True,
        ))
        for event in dump["events"]:
            lines.append(json.dumps({"dump": k, **event}, sort_keys=True))
    return lines


def write_flight_jsonl(path: str | Path, recorder_or_snapshot) -> Path:
    """Serialise the post-mortem dumps as deterministic JSONL.

    Line 1 is a meta header (capacity / totals); each following line is
    one dump header or one dumped event, in ring order — byte-identical
    for identical virtual-time timelines.
    """
    snap = (recorder_or_snapshot if isinstance(recorder_or_snapshot, dict)
            else recorder_or_snapshot.snapshot())
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(
            {"meta": {"capacity": snap["capacity"], "recorded": snap["recorded"],
                      "n_dumps": len(snap["dumps"])}},
            sort_keys=True,
        ) + "\n")
        for line in _dump_lines(snap):
            fh.write(line + "\n")
    return path
