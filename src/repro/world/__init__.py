"""Synthetic 3-D driving world.

Stands in for the nuScenes / RobotCar / KITTI footage the paper evaluates
on.  Frames are rendered with a true pinhole projection of a 3-D scene —
textured ground plane, buildings, cars, pedestrians — from an ego camera on
a parameterised trajectory, so every geometric property DiVE exploits
(focus of expansion, normalised MV magnitude vs. height, rotational flow)
holds in the rendered pixels by construction.
"""

from repro.world.annotations import EgoState, FrameRecord, MotionState, ObjectAnnotation
from repro.world.datasets import Clip, kitti_like, nuscenes_like, robotcar_like, summarize_clips
from repro.world.objects import SceneObject, building, moving_car, parked_car, pedestrian
from repro.world.renderer import Renderer
from repro.world.scene import Scene
from repro.world.trajectory import EgoTrajectory, Segment, StraightSegment, StopSegment, TurnSegment

__all__ = [
    "Clip",
    "EgoState",
    "EgoTrajectory",
    "FrameRecord",
    "MotionState",
    "ObjectAnnotation",
    "Renderer",
    "Scene",
    "SceneObject",
    "Segment",
    "StopSegment",
    "StraightSegment",
    "TurnSegment",
    "building",
    "kitti_like",
    "moving_car",
    "nuscenes_like",
    "parked_car",
    "pedestrian",
    "robotcar_like",
    "summarize_clips",
]
