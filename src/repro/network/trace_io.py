"""Bandwidth-trace persistence.

Real evaluations replay recorded drive logs; this module reads and writes
traces as two-column CSV (``time_s,rate_bps``), so measured traces — or
the synthetic ones used here — can be stored, shared, and replayed
bit-identically.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.network.trace import BandwidthTrace

__all__ = ["load_trace_csv", "save_trace_csv"]


def save_trace_csv(trace: BandwidthTrace, path: str | Path) -> None:
    """Write a trace as ``time_s,rate_bps`` rows (with a header)."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time_s", "rate_bps"])
        for t, r in zip(trace.times, trace.rates):
            writer.writerow([repr(float(t)), repr(float(r))])


def load_trace_csv(path: str | Path) -> BandwidthTrace:
    """Read a trace written by :func:`save_trace_csv` (or any CSV with
    ``time_s,rate_bps`` columns).

    Raises
    ------
    ValueError
        On a missing/incomplete header, non-numeric cells, or breakpoints
        that violate the trace invariants (must start at 0, strictly
        increase, rates non-negative) — the :class:`BandwidthTrace`
        constructor enforces the latter.
    """
    path = Path(path)
    times: list[float] = []
    rates: list[float] = []
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None or [h.strip() for h in header[:2]] != ["time_s", "rate_bps"]:
            raise ValueError(f"{path}: expected header 'time_s,rate_bps', got {header!r}")
        for lineno, row in enumerate(reader, start=2):
            if not row or (len(row) == 1 and not row[0].strip()):
                continue
            if len(row) < 2:
                raise ValueError(f"{path}:{lineno}: expected two columns, got {row!r}")
            try:
                times.append(float(row[0]))
                rates.append(float(row[1]))
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: non-numeric cell in {row!r}") from exc
    if not times:
        raise ValueError(f"{path}: no data rows")
    return BandwidthTrace(np.array(times), np.array(rates))
