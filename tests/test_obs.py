"""Tests for the observability layer: spans, JSONL round-trip, aggregation,
and the no-overhead guarantee of the default no-op tracer."""

import json
import time

import numpy as np
import pytest

from repro.codec.encoder import EncoderConfig, VideoEncoder
from repro.obs import (
    NULL_TRACER,
    FrameTrace,
    NullTracer,
    Tracer,
    counter_rows,
    merge,
    read_jsonl,
    span_rows,
    summarize,
    write_jsonl,
)
from repro.obs.aggregate import StageStats


def busy(seconds=0.001):
    end = time.perf_counter() + seconds
    while time.perf_counter() < end:
        pass


class TestSpans:
    def test_span_records_elapsed(self):
        tr = Tracer()
        with tr.frame(0):
            with tr.span("work"):
                busy(0.002)
        assert len(tr.frames) == 1
        assert tr.frames[0].spans["work"] >= 0.002

    def test_nested_spans_use_slash_paths(self):
        tr = Tracer()
        with tr.frame(0):
            with tr.span("encode"):
                with tr.span("dct"):
                    busy(0.001)
                with tr.span("quant"):
                    busy(0.001)
        spans = tr.frames[0].spans
        assert set(spans) == {"encode", "encode/dct", "encode/quant"}
        # The outer span covers both inner ones.
        assert spans["encode"] >= spans["encode/dct"] + spans["encode/quant"]

    def test_repeated_span_accumulates(self):
        tr = Tracer()
        with tr.frame(0):
            for _ in range(3):
                with tr.span("step"):
                    busy(0.0005)
        assert tr.frames[0].spans["step"] >= 0.0015

    def test_frame_contexts_do_not_nest(self):
        tr = Tracer()
        with tr.frame(0):
            with pytest.raises(RuntimeError):
                with tr.frame(1):
                    pass

    def test_span_outside_frame_goes_to_orphan(self):
        tr = Tracer()
        with tr.span("setup"):
            busy(0.0005)
        assert not tr.frames
        assert "setup" in tr.orphan.spans
        assert list(tr.all_records())[-1].index == -1

    def test_counters_and_gauges(self):
        tr = Tracer()
        with tr.frame(7):
            tr.count("drops")
            tr.count("drops")
            tr.count("bits", 100.0)
            tr.gauge("qp", 30.0)
            tr.gauge("qp", 32.0)  # gauge overwrites
        c = tr.frames[0].counters
        assert c["drops"] == 2.0
        assert c["bits"] == 100.0
        assert c["qp"] == 32.0

    def test_frame_record_without_context_creates_closed_record(self):
        tr = Tracer()
        rec = tr.frame_record(4)
        rec.counters["bytes_sent"] = 123.0
        assert tr.frames[0].index == 4
        assert tr.frames[0].counters["bytes_sent"] == 123.0

    def test_frame_record_with_context_returns_active(self):
        tr = Tracer()
        with tr.frame(5):
            rec = tr.frame_record(5)
            rec.counters["x"] = 1.0
        assert len(tr.frames) == 1
        assert tr.frames[0].counters["x"] == 1.0


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        tr = Tracer(meta={"scheme": "DiVE", "bandwidth_mbps": 2.0})
        for i in range(3):
            with tr.frame(i):
                with tr.span("me"):
                    busy(0.0002)
                tr.gauge("bits", 1000.0 + i)
        path = write_jsonl(tmp_path / "trace.jsonl", tr)
        meta, frames = read_jsonl(path)
        assert meta == {"scheme": "DiVE", "bandwidth_mbps": 2.0}
        assert [f.index for f in frames] == [0, 1, 2]
        for orig, loaded in zip(tr.frames, frames):
            assert loaded.spans == pytest.approx(orig.spans)
            assert loaded.counters == orig.counters

    def test_file_is_one_json_object_per_line(self, tmp_path):
        tr = Tracer()
        with tr.frame(0):
            tr.gauge("bits", 1.0)
        path = write_jsonl(tmp_path / "t.jsonl", tr)
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 2  # header + one frame
        assert "meta" in json.loads(lines[0])
        assert json.loads(lines[1])["index"] == 0

    def test_orphan_exported_only_when_nonempty(self, tmp_path):
        tr = Tracer()
        with tr.frame(0):
            pass
        _, frames = read_jsonl(write_jsonl(tmp_path / "a.jsonl", tr))
        assert [f.index for f in frames] == [0]
        with tr.span("loose"):
            pass
        _, frames = read_jsonl(write_jsonl(tmp_path / "b.jsonl", tr))
        assert [f.index for f in frames] == [0, -1]


class TestAggregation:
    def test_summary_math(self):
        frames = [
            FrameTrace(index=i, spans={"me": float(i + 1)}, counters={"bits": 10.0 * (i + 1)})
            for i in range(4)
        ]  # me: 1,2,3,4 s; bits: 10,20,30,40
        s = summarize(frames)
        assert s.n_frames == 4
        me = s.spans["me"]
        assert me.count == 4
        assert me.mean == pytest.approx(2.5)
        assert me.p50 == pytest.approx(2.5)
        assert me.p95 == pytest.approx(np.percentile([1, 2, 3, 4], 95))
        assert me.total == pytest.approx(10.0)
        bits = s.counters["bits"]
        assert bits.mean == pytest.approx(25.0)
        assert bits.total == pytest.approx(100.0)

    def test_absent_stage_not_counted_as_zero(self):
        frames = [
            FrameTrace(index=0, spans={"mc": 1.0}),
            FrameTrace(index=1, spans={}),  # I-frame: no mc at all
        ]
        s = summarize(frames)
        assert s.spans["mc"].count == 1
        assert s.spans["mc"].mean == pytest.approx(1.0)

    def test_empty_trace_summarizes_to_empty_summary(self):
        s = summarize([])
        assert s.n_frames == 0
        assert s.spans == {}
        assert s.counters == {}
        assert span_rows(s) == []
        assert counter_rows(s) == []

    def test_zero_sample_stage_stats(self):
        s = StageStats.from_values([])
        assert (s.count, s.mean, s.p50, s.p95, s.total) == (0, 0.0, 0.0, 0.0, 0.0)

    def test_merge_reindexes_and_copies(self):
        a = [FrameTrace(index=0, spans={"me": 1.0}), FrameTrace(index=1, spans={"me": 2.0})]
        b = [FrameTrace(index=0, spans={"me": 3.0})]
        merged = merge([a, b])
        assert [f.index for f in merged] == [0, 1, 2]
        assert merged[2].spans == {"me": 3.0}
        merged[0].spans["me"] = 99.0
        assert a[0].spans["me"] == 1.0  # inputs never mutated

    def test_merge_preserves_orphan_marker_and_no_reindex(self):
        a = [FrameTrace(index=3, counters={"bits": 1.0}), FrameTrace(index=-1, spans={"setup": 0.5})]
        merged = merge([a])
        assert [f.index for f in merged] == [0, -1]
        assert [f.index for f in merge([a], reindex=False)] == [3, -1]

    def test_rows_scaled_to_ms(self):
        frames = [FrameTrace(index=0, spans={"me": 0.25}, counters={"bits": 5.0})]
        s = summarize(frames)
        rows = span_rows(s)
        assert rows[0][0] == "me"
        assert rows[0][2] == pytest.approx(250.0)
        crows = counter_rows(s)
        assert crows[0][0] == "bits"
        assert crows[0][2] == pytest.approx(5.0)


class TestNullTracerOverhead:
    def _frames(self, n=6, shape=(64, 64), seed=0):
        rng = np.random.default_rng(seed)
        base = rng.uniform(0, 255, size=shape).astype(np.float32)
        return [np.clip(base + rng.normal(0, 2, size=shape), 0, 255).astype(np.float32) for _ in range(n)]

    def _encode_loop(self, frames, tracer):
        enc = VideoEncoder(EncoderConfig(gop=4, search_range=4), tracer=tracer)
        for i, f in enumerate(frames):
            with tracer.frame(i):
                with tracer.span("pipeline"):
                    enc.encode(f, target_bits=20000.0)

    def test_null_tracer_is_shared_and_disabled(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.span("x") is NULL_TRACER.span("y") is NULL_TRACER.frame(0)

    def test_null_primitives_are_cheap(self):
        """100k no-op span/counter calls must cost well under a millisecond
        each — i.e. nothing on the scale of a single frame encode."""
        t0 = time.perf_counter()
        for _ in range(100_000):
            with NULL_TRACER.span("me"):
                pass
            NULL_TRACER.gauge("bits", 1.0)
        elapsed = time.perf_counter() - t0
        assert elapsed < 0.5

    def test_null_tracer_encode_throughput(self):
        """A scheme run with tracing disabled (the default) must keep >95%
        of untraced throughput: the fully-instrumented encode loop under
        the no-op tracer may not be measurably slower than the bare loop."""
        frames = self._frames()

        def bare():
            enc = VideoEncoder(EncoderConfig(gop=4, search_range=4))
            for f in frames:
                enc.encode(f, target_bits=20000.0)

        def instrumented():
            self._encode_loop(frames, NULL_TRACER)

        bare()  # warm caches
        instrumented()
        for attempt in range(3):
            t_bare = min(self._time(bare) for _ in range(3))
            t_inst = min(self._time(instrumented) for _ in range(3))
            if t_inst <= t_bare / 0.95:
                break
        assert t_inst <= t_bare / 0.95, (
            f"no-op tracing cost {t_inst / t_bare - 1:.1%} "
            f"(bare {t_bare * 1e3:.1f} ms vs instrumented {t_inst * 1e3:.1f} ms)"
        )

    @staticmethod
    def _time(fn):
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0

    def test_live_tracer_records_encode_stages(self):
        frames = self._frames(n=3)
        tr = Tracer()
        self._encode_loop(frames, tr)
        assert len(tr.frames) == 3
        # I-frame (gop=4, frame 0) has no mc span; P-frames do.
        assert "pipeline/encode" in tr.frames[0].spans
        assert "pipeline/encode/mc" not in tr.frames[0].spans
        assert "pipeline/encode/mc" in tr.frames[1].spans
        for f in tr.frames:
            assert f.counters["bits"] > 0
            assert 0 <= f.counters["qp_mean"] <= 51
