"""Runtime numpy-array sanitizer — the ASan analog for the frame pipeline.

Static rules (:mod:`repro.check.rules`) catch invariant violations that are
visible in the source; this module catches the ones that only exist at run
time: a NaN that leaks out of a division, a float64 frame sneaking into a
float32 chain, a crop that breaks macroblock alignment.  Each check names
the pipeline stage that produced the bad array, so a failure reads like::

    SanitizeError: [encoder/input] frame: 3 non-finite values (first at (12, 40))

Opt in per run with ``ExperimentConfig(sanitize=True)`` (threaded through
:func:`repro.experiments.runner.sanitizer_for` exactly like the tracer), or
construct an :class:`ArraySanitizer` and pass it to the agent, encoder,
decoder or edge server directly.  The default :data:`NULL_SANITIZER`
mirrors :data:`repro.obs.tracer.NULL_TRACER`: every probe is behind an
``if sanitizer.enabled:`` guard, so the sanitize-off hot path pays one
attribute lookup and nothing else.

The sanitizer only *asserts* — it never copies, casts or otherwise mutates
an array — so a seeded run produces bit-identical results with the
sanitizer on or off (the golden e2e digest test relies on this).
"""

from __future__ import annotations

import numpy as np

__all__ = ["NULL_SANITIZER", "ArraySanitizer", "NullSanitizer", "SanitizeError"]


class SanitizeError(ValueError):
    """An array violated a pipeline invariant at a named stage."""

    def __init__(self, stage: str, name: str, problem: str):
        self.stage = stage
        self.name = name
        self.problem = problem
        super().__init__(f"[{stage}] {name}: {problem}")


class ArraySanitizer:
    """Asserts finiteness, dtype and macroblock alignment at stage boundaries.

    Parameters
    ----------
    block:
        Macroblock size used for alignment checks (``block_aligned=True``).

    Attributes
    ----------
    checks:
        Number of arrays checked so far (a cheap way for tests and traced
        runs to confirm the sanitizer actually ran).
    """

    enabled = True

    def __init__(self, *, block: int = 16):
        self.block = int(block)
        self.checks = 0

    def check(
        self,
        array: np.ndarray,
        stage: str,
        *,
        name: str = "array",
        dtype: np.dtype | type | None = None,
        block_aligned: bool = False,
        lo: float | None = None,
        hi: float | None = None,
    ) -> np.ndarray:
        """Validate ``array`` and return it unchanged.

        Parameters
        ----------
        array:
            The array to validate (must already be an ``ndarray`` — the
            sanitizer never converts).
        stage:
            Pipeline stage label, e.g. ``"encoder/input"`` — named in the
            error so the offending boundary is immediately identifiable.
        name:
            What the array is (``"frame"``, ``"motion vectors"`` ...).
        dtype:
            Expected exact dtype, when given.
        block_aligned:
            Require the trailing two dimensions to be multiples of
            :attr:`block`.
        lo, hi:
            Inclusive value bounds, when given (e.g. QP maps in [0, 51]).

        Raises
        ------
        SanitizeError
            On the first violated invariant.
        """
        self.checks += 1
        if not isinstance(array, np.ndarray):
            raise SanitizeError(stage, name, f"expected ndarray, got {type(array).__name__}")
        if dtype is not None and array.dtype != np.dtype(dtype):
            raise SanitizeError(stage, name, f"dtype {array.dtype} != expected {np.dtype(dtype)}")
        if block_aligned:
            if array.ndim < 2:
                raise SanitizeError(stage, name, f"expected >= 2 dims for alignment check, got shape {array.shape}")
            h, w = array.shape[0], array.shape[1]
            if h % self.block or w % self.block:
                raise SanitizeError(
                    stage, name, f"shape {array.shape} not macroblock-aligned (block={self.block})"
                )
        if array.dtype.kind == "f":
            finite = np.isfinite(array)
            if not finite.all():
                bad = int(array.size - int(finite.sum()))
                first = tuple(int(i) for i in np.unravel_index(int(np.argmin(finite)), array.shape))
                raise SanitizeError(
                    stage, name, f"{bad} non-finite value{'s' if bad != 1 else ''} (first at {first})"
                )
        if lo is not None and array.size and float(array.min()) < lo:
            raise SanitizeError(stage, name, f"min {float(array.min()):g} below lower bound {lo:g}")
        if hi is not None and array.size and float(array.max()) > hi:
            raise SanitizeError(stage, name, f"max {float(array.max()):g} above upper bound {hi:g}")
        return array


class NullSanitizer:
    """Zero-overhead sanitizer used by default everywhere (cf. NullTracer)."""

    enabled = False
    checks = 0

    __slots__ = ()

    def check(self, array: np.ndarray, stage: str, **kwargs: object) -> np.ndarray:
        return array


#: The shared no-op sanitizer — the default for every instrumented component.
NULL_SANITIZER = NullSanitizer()
