"""S012 — lock discipline for the streaming runtime's shared state.

PR 6 made the pipeline concurrent: `StreamRunner` stages, `VirtualClock`
and `EdgeServer` all guard mutable state with ``threading`` locks.  A
per-node linter cannot tell a guarded access from a racy one; this
analyzer reasons over whole classes and the call graph:

1. **Unlocked access to guarded attributes.**  For every class that owns
   a lock (``self._lock = threading.Lock()/RLock()/Condition()``), the
   attributes *mutated* inside a ``with self._lock:`` scope in running
   code (``__init__`` is single-threaded and exempt) form the guarded
   set; any read or write of a guarded attribute outside the lock in
   another method is a race.  Leading-underscore helper methods whose
   every internal call site sits inside a lock scope are treated as
   lock-held (``_drain()`` called only under the lock may touch guarded
   state freely).
2. **Blocking while holding a lock.**  ``time.sleep``, ``open``,
   no-argument ``.join()`` and ``.get()``/``.put()`` on queue-typed
   attributes (constructor-resolved, so ``dict.get`` is untouched)
   inside a lock scope invite convoying and deadlock.  Waiting on the
   lock's own Condition (``self._cond.wait()``) is of course allowed.
3. **Wall clock reachable from stream code.**  Any function or method in
   a ``stream/`` module from which ``time.time()``/``time.monotonic()``
   is reachable through the call graph is flagged — streaming decisions
   must come from the :class:`~repro.stream.clock.VirtualClock` or the
   determinism guarantee dies.  ``time.perf_counter()`` is sanctioned
   (watchdogs and span timing measure real elapsed time on purpose).

Suppress deliberate exceptions with ``# repro: noqa[S012]``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.check.callgraph import CallSite, build_callgraph, describe_chain
from repro.check.engine import ModuleContext, Rule, dotted_name, register
from repro.check.symbols import ClassInfo, ModuleInfo, ProjectModel

__all__ = ["LockDisciplineRule"]

#: Canonical constructor names that create a lock-like guard.
_LOCK_CTORS = frozenset({"threading.Lock", "threading.RLock", "threading.Condition"})

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append", "appendleft", "extend", "add", "insert", "remove", "discard",
        "pop", "popleft", "popitem", "clear", "update", "setdefault",
    }
)

#: Wall-clock reads that must never feed streaming decisions.
_WALL_CLOCKS = frozenset({"time.time", "time.monotonic"})


def _canonical(project: ProjectModel, module: ModuleInfo, name: str) -> str:
    resolved = project.resolve(module, name)
    return name if resolved is None else resolved[1]


@dataclass
class _Access:
    attr: str
    node: ast.AST
    lock: str | None  # lock attr held at the access, if any


@dataclass
class _Blocking:
    node: ast.AST
    what: str
    lock: str | None


@dataclass
class _MethodScan:
    reads: list[_Access] = field(default_factory=list)
    writes: list[_Access] = field(default_factory=list)
    blocking: list[_Blocking] = field(default_factory=list)
    helper_calls: list[tuple[str, str | None]] = field(default_factory=list)  # (callee, lock)


def _self_attr(node: ast.AST) -> str | None:
    """``X`` for an ``self.X`` attribute expression, else ``None``."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


class _MethodScanner:
    """One pass over a method body tracking which lock (if any) is held."""

    def __init__(self, lock_attrs: frozenset[str], queue_attrs: frozenset[str]):
        self.lock_attrs = lock_attrs
        self.queue_attrs = queue_attrs
        self.scan = _MethodScan()

    # Nested defs/lambdas are skipped: a closure built under the lock
    # typically runs later on another thread, so neither its accesses nor
    # the ambient lock state can be attributed soundly.
    _SKIP = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def run(self, func: ast.AST) -> _MethodScan:
        self._stmts(getattr(func, "body", []), None)
        return self.scan

    # ------------------------------------------------------------ statements

    def _stmts(self, body: list[ast.stmt], lock: str | None) -> None:
        for stmt in body:
            self._stmt(stmt, lock)

    def _stmt(self, stmt: ast.stmt, lock: str | None) -> None:
        if isinstance(stmt, self._SKIP):
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = lock
            for item in stmt.items:
                held = _self_attr(item.context_expr)
                if held in self.lock_attrs and inner is None:
                    inner = held
                else:
                    self._expr(item.context_expr, lock)
            self._stmts(stmt.body, inner)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._target(target, lock)
            self._expr(stmt.value, lock)
        elif isinstance(stmt, ast.AnnAssign):
            self._target(stmt.target, lock)
            if stmt.value is not None:
                self._expr(stmt.value, lock)
        elif isinstance(stmt, ast.AugAssign):
            self._target(stmt.target, lock)
            self._expr(stmt.target, lock)  # in-place op reads too
            self._expr(stmt.value, lock)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._target(stmt.target, lock)
            self._expr(stmt.iter, lock)
            self._stmts(stmt.body, lock)
            self._stmts(stmt.orelse, lock)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.test, lock)
            self._stmts(stmt.body, lock)
            self._stmts(stmt.orelse, lock)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.test, lock)
            self._stmts(stmt.body, lock)
            self._stmts(stmt.orelse, lock)
        elif isinstance(stmt, ast.Try):
            self._stmts(stmt.body, lock)
            for handler in stmt.handlers:
                self._stmts(handler.body, lock)
            self._stmts(stmt.orelse, lock)
            self._stmts(stmt.finalbody, lock)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child, lock)

    def _target(self, target: ast.AST, lock: str | None) -> None:
        attr = _self_attr(target)
        if attr is not None:
            if attr not in self.lock_attrs:
                self.scan.writes.append(_Access(attr, target, lock))
            return
        if isinstance(target, ast.Subscript):
            attr = _self_attr(target.value)
            if attr is not None and attr not in self.lock_attrs:
                self.scan.writes.append(_Access(attr, target, lock))
            else:
                self._expr(target.value, lock)
            self._expr(target.slice, lock)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._target(elt, lock)
        elif isinstance(target, ast.Starred):
            self._target(target.value, lock)
        elif isinstance(target, ast.expr):
            self._expr(target, lock)

    # ----------------------------------------------------------- expressions

    def _expr(self, expr: ast.AST, lock: str | None) -> None:
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, self._SKIP):
                continue
            if isinstance(node, ast.Call):
                self._call(node, lock)
            elif isinstance(node, ast.Attribute):
                attr = _self_attr(node)
                if attr is not None and attr not in self.lock_attrs:
                    self.scan.reads.append(_Access(attr, node, lock))
            stack.extend(ast.iter_child_nodes(node))

    def _call(self, node: ast.Call, lock: str | None) -> None:
        name = dotted_name(node.func)
        if name == "time.sleep":
            self.scan.blocking.append(_Blocking(node, "time.sleep()", lock))
            return
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            self.scan.blocking.append(_Blocking(node, "open()", lock))
            return
        if not isinstance(node.func, ast.Attribute):
            return
        method = node.func.attr
        receiver_attr = _self_attr(node.func.value)
        if receiver_attr in self.lock_attrs:
            return  # wait/notify/acquire on the guard itself is the point
        if isinstance(node.func.value, ast.Name) and node.func.value.id == "self":
            self.scan.helper_calls.append((method, lock))
        if method == "join" and not node.args and not node.keywords:
            self.scan.blocking.append(_Blocking(node, ".join()", lock))
        elif method in ("get", "put") and receiver_attr in self.queue_attrs:
            self.scan.blocking.append(_Blocking(node, f"self.{receiver_attr}.{method}()", lock))
        elif method in _MUTATORS and receiver_attr is not None:
            self.scan.writes.append(_Access(receiver_attr, node, lock))


def _locked_only_helpers(scans: dict[str, _MethodScan]) -> set[str]:
    """Private methods whose every internal call site holds a lock."""
    sites: dict[str, list[tuple[str, str | None]]] = {}
    for caller, scan in scans.items():
        for callee, lock in scan.helper_calls:
            sites.setdefault(callee, []).append((caller, lock))
    locked: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, callers in sites.items():
            if name in locked or not name.startswith("_") or name not in scans:
                continue
            if name == "__init__":
                continue
            if all(lock is not None or caller in locked for caller, lock in callers):
                locked.add(name)
                changed = True
    return locked


@register
class LockDisciplineRule(Rule):
    id = "S012"
    name = "lock-discipline"
    severity = "error"
    description = (
        "attributes mutated under a class's lock must never be touched "
        "outside it; no blocking calls while a lock is held; no wall-clock "
        "reachable from stream code (use the VirtualClock)."
    )
    scope = ("repro",)
    requires_project = True

    def module_check(self, tree: ast.Module, ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        project = ctx.project
        if not isinstance(project, ProjectModel):
            return
        module = project.module_for(ctx.path)
        if module is None:
            return
        for cls in module.classes.values():
            yield from self._check_class(project, module, cls)
        if "stream" in Path(ctx.path).parts:
            yield from self._check_wallclock(project, module)

    # ------------------------------------------------------- lock discipline

    def _check_class(
        self, project: ProjectModel, module: ModuleInfo, cls: ClassInfo
    ) -> Iterator[tuple[ast.AST, str]]:
        lock_attrs = frozenset(
            attr
            for attr, ctor in cls.attr_ctors.items()
            if _canonical(project, module, ctor) in _LOCK_CTORS
        )
        if not lock_attrs:
            return
        queue_attrs = frozenset(
            attr
            for attr, ctor in cls.attr_ctors.items()
            if _canonical(project, module, ctor).rsplit(".", 1)[-1].endswith("Queue")
        )
        scans = {
            name: _MethodScanner(lock_attrs, queue_attrs).run(info.node)
            for name, info in cls.methods.items()
        }
        locked_helpers = _locked_only_helpers(scans)

        guarded: dict[str, str] = {}  # attr -> the lock that guards it
        for method, scan in scans.items():
            if method == "__init__":
                continue
            ambient = method in locked_helpers
            for access in scan.writes:
                lock = access.lock or (next(iter(lock_attrs)) if ambient else None)
                if lock is not None:
                    guarded.setdefault(access.attr, lock)

        for method, scan in scans.items():
            if method == "__init__" or method in locked_helpers:
                continue
            seen: set[str] = set()
            for access in [*scan.writes, *scan.reads]:
                lock = guarded.get(access.attr)
                if lock is None or access.lock is not None or access.attr in seen:
                    continue
                seen.add(access.attr)
                yield access.node, (
                    f"'{cls.name}.{access.attr}' is mutated under 'self.{lock}' but "
                    f"accessed without it in {method}() — racy shared state"
                )

        for method, scan in scans.items():
            ambient = next(iter(lock_attrs)) if method in locked_helpers else None
            for blocking in scan.blocking:
                lock = blocking.lock or ambient
                if lock is not None:
                    yield blocking.node, (
                        f"blocking call {blocking.what} while holding 'self.{lock}' in "
                        f"{cls.name}.{method}() — convoys every contending thread"
                    )

    # ------------------------------------------------------ wall-clock reach

    @staticmethod
    def _in_stream(project: ProjectModel, qualname: str) -> bool:
        fn = project.functions.get(qualname)
        mod = project.modules.get(fn.module) if fn else None
        return mod is not None and "stream" in Path(mod.path).parts

    def _check_wallclock(
        self, project: ProjectModel, module: ModuleInfo
    ) -> Iterator[tuple[ast.AST, str]]:
        graph = build_callgraph(project)

        def is_wall(site: CallSite) -> bool:
            return not site.internal and site.callee in _WALL_CLOCKS

        targets = list(module.functions.values())
        for cls in module.classes.values():
            targets.extend(cls.methods.values())
        for fn in targets:
            chain = graph.reach(fn.qualname, is_wall)
            if chain is None:
                continue
            # Report at the boundary: if the first hop stays inside stream
            # code, that callee gets its own (shorter-chain) finding.
            if chain[0].internal and self._in_stream(project, chain[0].callee):
                continue
            yield chain[0].node, (
                f"{fn.name}() reaches wall clock via {describe_chain(chain)}; "
                "streaming decisions must come from the VirtualClock "
                "(time.perf_counter() is fine for watchdogs)"
            )
