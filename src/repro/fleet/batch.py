"""Fleet-wide inference front-end: queue, batches, admission control.

The plain :class:`~repro.edge.server.EdgeServer` answers each request in
``inference_latency + downlink_latency`` — an unloaded server.  A fleet
shares W detector workers, so requests queue, batch and sometimes get
turned away.  Two pieces model that:

- :class:`RecordingEdgeServer` — the *belief* side.  Each agent's
  streaming run talks to its own private wrapper around a real
  ``EdgeServer``; results are unchanged (the agent's optimistic
  timeline, exactly as in a solo run) while every inference request is
  logged for the truth-side replay.  This wrapper is the only fleet
  module allowed to call ``EdgeServer.process*`` directly (lint S016).
- :class:`BatchingEdgeServer` — the *truth* side.  A discrete-event
  replay of the pooled, arrival-sorted requests: admitted requests wait
  in one FIFO queue; a batch dispatches as soon as a worker is free and
  the batch is full (``max_batch``) or the oldest member has waited
  ``max_wait``; a bounded queue rejects (or degrades) newcomers.  Every
  decision is virtual-time arithmetic over a sorted request list, so the
  outcome set is bit-identical for any thread count and any agent
  interleaving upstream.

Batch service time is ``inference_latency * ((1-a)*max(c) + a*sum(c))``
where ``a`` is ``batch_overhead`` and ``c`` the members' relative costs
(1.0 normally, ``degrade_factor`` for degraded admissions): a batch of
one normal request costs exactly ``inference_latency`` (the unloaded
server), and each extra member adds only the marginal ``a`` share — the
amortisation real batched detectors show.

Tie-break, documented and deterministic: when a request arrives exactly
at a batch's dispatch instant, the batch dispatches first — the
newcomer waits for the next one.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass

from repro.metrics.registry import NULL_REGISTRY

__all__ = [
    "BatchRecord",
    "BatchingEdgeServer",
    "FleetRequest",
    "RecordedCall",
    "RecordingEdgeServer",
    "RequestOutcome",
]

_INF = float("inf")

#: Admission policies at a full queue.
ADMISSIONS = ("reject", "degrade")


# ------------------------------------------------------------- belief side


@dataclass(frozen=True)
class RecordedCall:
    """One inference request an agent believed it made.

    ``seq`` is the per-agent call ordinal; ``arrival`` is the request's
    arrival at the server on the agent's *local* belief timeline;
    ``result_time`` the unloaded-server result the agent saw.
    """

    seq: int
    frame_index: int
    arrival: float
    method: str
    result_time: float


class RecordingEdgeServer:
    """Belief-side pass-through wrapper logging every inference call.

    Hands every call to the wrapped real server unchanged (the agent's
    solo run stays bit-identical), while appending a
    :class:`RecordedCall` per request.  The streaming runtime serialises
    server calls through its request/reply handshake, so the log order
    is the agent's own deterministic call order.
    """

    def __init__(self, server):
        self._server = server
        self.calls: list[RecordedCall] = []

    def process(self, encoded, record, *, arrival_time: float):
        result = self._server.process(encoded, record, arrival_time=arrival_time)
        self.calls.append(RecordedCall(
            seq=len(self.calls), frame_index=record.index,
            arrival=arrival_time, method="process", result_time=result.result_time,
        ))
        return result

    def process_image(self, image, record, *, arrival_time: float):
        result = self._server.process_image(image, record, arrival_time=arrival_time)
        self.calls.append(RecordedCall(
            seq=len(self.calls), frame_index=record.index,
            arrival=arrival_time, method="process_image", result_time=result.result_time,
        ))
        return result

    def reset(self):
        return self._server.reset()

    def __getattr__(self, name):
        return getattr(self._server, name)


# -------------------------------------------------------------- truth side


@dataclass(frozen=True)
class FleetRequest:
    """One inference request on the fleet's global timeline."""

    agent: str
    seq: int
    frame_index: int
    arrival: float
    cost: float = 1.0

    def order_key(self) -> tuple:
        return (self.arrival, self.agent, self.seq)


@dataclass
class RequestOutcome:
    """The sealed fate of one request at the batching front-end.

    ``status`` is ``served`` | ``degraded`` (admitted over capacity at
    reduced fidelity) | ``rejected`` (turned away; the agent's frame
    goes stale).  Times are global simulated seconds; rejected requests
    keep ``start_time == finish_time == arrival`` and an infinite
    ``result_time``.
    """

    agent: str
    seq: int
    frame_index: int
    arrival: float
    status: str
    start_time: float
    finish_time: float
    result_time: float
    batch_id: int = -1
    batch_size: int = 0
    queue_wait: float = 0.0

    def key(self) -> str:
        """Deterministic one-line encoding (digest material)."""
        return (
            f"{self.agent}/{self.seq}/f{self.frame_index}:{self.status}"
            f":arr={self.arrival:.6f}:start={self.start_time:.6f}"
            f":res={self.result_time:.6f}:b{self.batch_id}x{self.batch_size}"
        )


@dataclass(frozen=True)
class BatchRecord:
    """One dispatched batch (invariant-test material).

    ``worker_free`` is when the dispatching worker became available and
    ``oldest_arrival`` the first member's arrival — together they let
    tests check the max-wait bound: ``start <= max(worker_free,
    oldest_arrival + max_wait)`` unless the batch went out full.
    """

    batch_id: int
    start: float
    finish: float
    size: int
    worker_free: float
    oldest_arrival: float
    trigger: str  # "full" | "wait"


class BatchingEdgeServer:
    """Discrete-event batch-serving replay over pooled fleet requests.

    Parameters
    ----------
    workers:
        Parallel detector workers.
    max_batch:
        Largest batch a worker takes at once.
    max_wait:
        Longest the oldest queued request may wait (beyond worker
        availability) for its batch to fill; ``0`` dispatches greedily.
    queue_capacity:
        Waiting-queue bound; ``None`` is unbounded (no admission
        control).
    admission:
        What happens to a newcomer at a full queue: ``reject`` (the
        request never runs) or ``degrade`` (admitted anyway, served at
        ``degrade_factor`` relative cost — the cheap-model fallback).
    batch_overhead:
        Marginal cost of each additional batch member relative to a solo
        request (see module docstring).
    """

    def __init__(self, *, workers: int = 1, max_batch: int = 1, max_wait: float = 0.0,
                 queue_capacity: int | None = None, admission: str = "reject",
                 inference_latency: float = 0.020, downlink_latency: float = 0.010,
                 batch_overhead: float = 0.25, degrade_factor: float = 0.5,
                 metrics=NULL_REGISTRY):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0.0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        if queue_capacity is not None and queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1 or None, got {queue_capacity}")
        if admission not in ADMISSIONS:
            raise ValueError(f"unknown admission {admission!r}; expected one of {ADMISSIONS}")
        if not 0.0 <= batch_overhead <= 1.0:
            raise ValueError(f"batch_overhead must be in [0, 1], got {batch_overhead}")
        if not 0.0 < degrade_factor <= 1.0:
            raise ValueError(f"degrade_factor must be in (0, 1], got {degrade_factor}")
        self.workers = workers
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.queue_capacity = queue_capacity
        self.admission = admission
        self.inference_latency = inference_latency
        self.downlink_latency = downlink_latency
        self.batch_overhead = batch_overhead
        self.degrade_factor = degrade_factor
        self.metrics = metrics
        self.batches: list[BatchRecord] = []

    # -------------------------------------------------------------- serve

    def serve(self, requests: list[FleetRequest]) -> list[RequestOutcome]:
        """Replay ``requests`` through the batcher; outcomes in request
        order (sorted by ``(arrival, agent, seq)``)."""
        reqs = sorted(requests, key=FleetRequest.order_key)
        self.batches = []
        free = [0.0] * self.workers
        heapq.heapify(free)
        waiting: deque[tuple[FleetRequest, bool]] = deque()
        outcomes: list[RequestOutcome] = []

        # Hoisted instruments (lint S015); serve() is single-threaded so
        # recording order is deterministic.
        metrics = self.metrics
        m_batch = metrics.histogram(
            "fleet_batch_size", buckets=tuple(float(b) for b in range(1, 66)),
            help="dispatched batch sizes at the shared edge front-end")
        m_admit = metrics.counter(
            "fleet_admissions", help="admission decisions at the bounded queue")

        def dispatch_until(now: float) -> None:
            """Dispatch every batch whose dispatch instant is <= ``now``."""
            while waiting:
                worker_free = free[0]
                oldest = waiting[0][0]
                wait_ready = oldest.arrival + self.max_wait
                if len(waiting) >= self.max_batch:
                    ready = min(wait_ready, waiting[self.max_batch - 1][0].arrival)
                else:
                    ready = wait_ready
                start = max(worker_free, ready)
                if start > now:
                    return
                # Members: whoever is queued by the dispatch instant,
                # oldest first, capped at max_batch.
                arrivals = [waiting[k][0].arrival
                            for k in range(min(self.max_batch, len(waiting)))]
                size = max(bisect_right(arrivals, start), 1)
                members = [waiting.popleft() for _ in range(size)]
                costs = [self.degrade_factor if degraded else req.cost
                         for req, degraded in members]
                if len(costs) == 1:
                    batch_cost = costs[0]
                else:
                    batch_cost = ((1.0 - self.batch_overhead) * max(costs)
                                  + self.batch_overhead * sum(costs))
                finish = start + self.inference_latency * batch_cost
                heapq.heapreplace(free, finish)
                batch_id = len(self.batches)
                trigger = "full" if size == self.max_batch else "wait"
                self.batches.append(BatchRecord(
                    batch_id=batch_id, start=start, finish=finish, size=size,
                    worker_free=worker_free, oldest_arrival=members[0][0].arrival,
                    trigger=trigger,
                ))
                if metrics.enabled:
                    m_batch.observe(float(size), at=start)
                for req, degraded in members:
                    outcomes.append(RequestOutcome(
                        agent=req.agent, seq=req.seq, frame_index=req.frame_index,
                        arrival=req.arrival,
                        status="degraded" if degraded else "served",
                        start_time=start, finish_time=finish,
                        result_time=finish + self.downlink_latency,
                        batch_id=batch_id, batch_size=size,
                        queue_wait=start - req.arrival,
                    ))

        for req in reqs:
            dispatch_until(req.arrival)
            if (self.queue_capacity is not None
                    and len(waiting) >= self.queue_capacity):
                if self.admission == "reject":
                    if metrics.enabled:
                        m_admit.labels(decision="reject").inc(1.0, at=req.arrival)
                    outcomes.append(RequestOutcome(
                        agent=req.agent, seq=req.seq, frame_index=req.frame_index,
                        arrival=req.arrival, status="rejected",
                        start_time=req.arrival, finish_time=req.arrival,
                        result_time=_INF,
                    ))
                    continue
                if metrics.enabled:
                    m_admit.labels(decision="degrade").inc(1.0, at=req.arrival)
                waiting.append((req, True))
                continue
            if metrics.enabled:
                m_admit.labels(decision="admit").inc(1.0, at=req.arrival)
            waiting.append((req, False))
        dispatch_until(_INF)
        outcomes.sort(key=lambda o: (o.arrival, o.agent, o.seq))
        return outcomes
