"""Metrics exporters: JSONL, OpenMetrics-style text, and digests.

Mirrors :mod:`repro.obs.export`: line 1 of the JSONL is a ``meta``
header, every following line is one record.  Two record shapes follow:

- ``{"instrument": name, "kind": ..., "help": ..., "unit": ...,
  "edges": [...]}`` — one per instrument (edges only for histograms);
- ``{"name": ..., "kind": ..., "labels": {...}, "window": i, "t0": ...,
  "count": ..., "sum": ..., ...}`` — one per (series, window), sorted by
  ``(name, labels, window)``.

The digest hashes exactly these body lines (meta excluded), so two runs
with identical virtual-time timelines produce identical digests no
matter how many worker threads produced the samples or what wall-clock
metadata rode along.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.metrics.hist import FixedBucketHistogram

__all__ = [
    "MetricsDoc",
    "read_metrics_jsonl",
    "registry_digest",
    "snapshot_lines",
    "to_openmetrics",
    "write_metrics_jsonl",
]


def _snapshot(registry_or_snapshot) -> dict:
    if isinstance(registry_or_snapshot, dict):
        return registry_or_snapshot
    return registry_or_snapshot.snapshot()


def snapshot_lines(registry_or_snapshot) -> list[str]:
    """Canonical JSONL body lines (no meta header) of a snapshot."""
    snap = _snapshot(registry_or_snapshot)
    lines: list[str] = []
    for inst in snap["instruments"]:
        header = {
            "instrument": inst["name"], "kind": inst["kind"],
            "help": inst["help"], "unit": inst["unit"],
        }
        if "edges" in inst:
            header["edges"] = inst["edges"]
        lines.append(json.dumps(header, sort_keys=True))
        for series in inst["series"]:
            for win in series["windows"]:
                row = {
                    "name": inst["name"], "kind": inst["kind"],
                    "labels": series["labels"], "window": win["index"],
                }
                row.update({k: v for k, v in win.items() if k != "index"})
                lines.append(json.dumps(row, sort_keys=True))
    return lines


def registry_digest(registry_or_snapshot) -> str:
    """SHA-256 of the canonical body lines — the timeline identity."""
    body = "\n".join(snapshot_lines(registry_or_snapshot))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def write_metrics_jsonl(path: str | Path, registry_or_snapshot) -> Path:
    """Write meta header + canonical body lines; returns the path."""
    snap = _snapshot(registry_or_snapshot)
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps({"meta": snap["meta"], "window": snap["window"]},
                            sort_keys=True) + "\n")
        for line in snapshot_lines(snap):
            fh.write(line + "\n")
    return path


@dataclass
class MetricsDoc:
    """A parsed metrics JSONL: header metadata plus flat series rows."""

    meta: dict = field(default_factory=dict)
    window: float = 0.0
    instruments: dict[str, dict] = field(default_factory=dict)
    rows: list[dict] = field(default_factory=list)

    def histogram_rows(self) -> list[dict]:
        return [r for r in self.rows if r.get("kind") == "histogram"]

    def pooled_histogram(self, name: str, labels: dict | None = None) -> FixedBucketHistogram:
        """Merge every window of one histogram series back together."""
        header = self.instruments[name]
        pooled = FixedBucketHistogram(header["edges"])
        for row in self.rows:
            if row["name"] != name or row["kind"] != "histogram":
                continue
            if labels is not None and row["labels"] != labels:
                continue
            part = FixedBucketHistogram(header["edges"])
            part.counts = [int(c) for c in row["buckets"]]
            part.count = int(row["count"])
            if part.count:
                part.min, part.max = float(row["min"]), float(row["max"])
                part._sum.add(float(row["sum"]))
            pooled.merge(part)
        return pooled


def read_metrics_jsonl(path: str | Path) -> MetricsDoc:
    doc = MetricsDoc()
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh):
            raw = raw.strip()
            if not raw:
                continue
            obj = json.loads(raw)
            if lineno == 0 and "meta" in obj:
                doc.meta = dict(obj["meta"])
                doc.window = float(obj.get("window", 0.0))
            elif "instrument" in obj:
                doc.instruments[obj["instrument"]] = obj
            else:
                doc.rows.append(obj)
    return doc


def to_openmetrics(registry_or_snapshot) -> str:
    """OpenMetrics-style text: cumulative totals pooled across windows.

    The windowed timeline is the JSONL's job; this format is the
    interoperability view a scrape endpoint would serve — one line per
    series with counters summed, gauges at their last value, histograms
    as cumulative ``_bucket{le=...}`` lines plus ``_sum`` / ``_count``.
    """
    snap = _snapshot(registry_or_snapshot)
    out: list[str] = []
    for inst in snap["instruments"]:
        name, kind = inst["name"], inst["kind"]
        if inst["help"]:
            out.append(f"# HELP {name} {inst['help']}")
        out.append(f"# TYPE {name} {kind}")
        for series in inst["series"]:
            labelstr = ",".join(f'{k}="{v}"' for k, v in sorted(series["labels"].items()))
            windows = series["windows"]
            if kind == "counter":
                total = sum(w["sum"] for w in windows)
                out.append(f"{name}_total{{{labelstr}}} {total!r}" if labelstr
                           else f"{name}_total {total!r}")
            elif kind == "gauge":
                last = windows[-1]["last"] if windows else 0.0
                out.append(f"{name}{{{labelstr}}} {last!r}" if labelstr
                           else f"{name} {last!r}")
            else:
                edges = inst["edges"]
                counts = [0] * (len(edges) + 1)
                total_count, total_sum = 0, 0.0
                for w in windows:
                    total_count += w["count"]
                    total_sum += w["sum"]
                    for i, c in enumerate(w["buckets"]):
                        counts[i] += c
                cum = 0
                for i, edge in enumerate(edges):
                    cum += counts[i]
                    le = f'le="{edge!r}"'
                    sep = "," if labelstr else ""
                    out.append(f"{name}_bucket{{{labelstr}{sep}{le}}} {cum}")
                cum += counts[-1]
                sep = "," if labelstr else ""
                out.append(f'{name}_bucket{{{labelstr}{sep}le="+Inf"}} {cum}')
                suffix = f"{{{labelstr}}}" if labelstr else ""
                out.append(f"{name}_sum{suffix} {total_sum!r}")
                out.append(f"{name}_count{suffix} {total_count}")
    out.append("# EOF")
    return "\n".join(out) + "\n"
