"""Intraprocedural forward dataflow: reaching taints over one function.

The single-expression rules (e.g. S005 bits/bytes) only see names that
appear *in the same statement*; this pass follows values through local
assignments, so ``payload = size_bytes`` two branches ago still carries
its ``bytes`` taint when it later meets ``header_bits``:

- statements are interpreted in order; ``if``/``try`` branches are
  evaluated on copies of the environment and merged by union;
- ``for``/``while`` bodies run twice so loop-carried taints reach their
  first use (a cheap fixpoint — taint sets only grow);
- the **escape model** is conservative: names rebound from unknown calls
  lose their taints, names declared ``global``/``nonlocal`` are never
  tracked, subscript/attribute *stores* do not bind (attribute loads are
  re-seeded by name on every read), and passing a local to a call never
  invalidates it (unit taints ride scalars, which are immutable).

Clients implement :class:`TaintModel`: seed taints from identifiers,
attributes and known calls; observe binops/comparisons/assignments (this
is where a units checker records findings); and decide the taint an
assignment binds.  :func:`run_dataflow` drives the walk.
"""

from __future__ import annotations

import ast
from typing import FrozenSet

__all__ = ["EMPTY", "TaintModel", "run_dataflow"]

Taints = FrozenSet[str]

#: The empty taint set (untainted / unknown).
EMPTY: Taints = frozenset()


class TaintModel:
    """Client hooks for one dataflow run.  Override what you need."""

    def name_taint(self, name: str) -> Taints:
        """Seed taints of an identifier that has no tracked binding."""
        return EMPTY

    def attr_taint(self, node: ast.Attribute, base: Taints) -> Taints:
        """Taints of an attribute load (default: seed by attribute name)."""
        return self.name_taint(node.attr)

    def call_taint(self, node: ast.Call, dotted: str | None, arg_taints: list[Taints]) -> Taints:
        """Taints of a call result (default: unknown)."""
        return EMPTY

    def binop(self, node: ast.BinOp, left: Taints, right: Taints) -> Taints:
        """Observe (and type) a binary operation; default: union."""
        return left | right

    def compare(self, node: ast.Compare, taints: list[Taints]) -> None:
        """Observe a comparison (taints of left + each comparator)."""

    def assign_name(self, name: str, stmt: ast.stmt, value: Taints) -> Taints:
        """The taint set an assignment binds to ``name``."""
        seeded = self.name_taint(name)
        return seeded if seeded else value

    def assign_attr(self, node: ast.Attribute, stmt: ast.stmt, value: Taints) -> None:
        """Observe a store into an attribute (``self.x = ...``)."""


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class _Interp:
    def __init__(self, model: TaintModel):
        self.model = model
        self.env: dict[str, Taints] = {}
        self.frozen: set[str] = set()  # global/nonlocal — never tracked
        self.stmt: ast.stmt | None = None  # statement being interpreted

    # ---------------------------------------------------------- expressions

    def eval(self, node: ast.AST | None) -> Taints:
        if node is None:
            return EMPTY
        if isinstance(node, ast.Name):
            if node.id in self.frozen:
                return self.model.name_taint(node.id)
            if node.id in self.env:
                return self.env[node.id]
            return self.model.name_taint(node.id)
        if isinstance(node, ast.Attribute):
            return self.model.attr_taint(node, self.eval(node.value))
        if isinstance(node, ast.Call):
            args = [self.eval(a) for a in node.args]
            args += [self.eval(kw.value) for kw in node.keywords]
            return self.model.call_taint(node, _dotted(node.func), args)
        if isinstance(node, ast.BinOp):
            return self.model.binop(node, self.eval(node.left), self.eval(node.right))
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.BoolOp):
            out = EMPTY
            for v in node.values:
                out |= self.eval(v)
            return out
        if isinstance(node, ast.Compare):
            taints = [self.eval(node.left)] + [self.eval(c) for c in node.comparators]
            self.model.compare(node, taints)
            return EMPTY
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self.eval(node.body) | self.eval(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = EMPTY
            for e in node.elts:
                out |= self.eval(e)
            return out
        if isinstance(node, ast.Dict):
            out = EMPTY
            for v in node.values:
                out |= self.eval(v)
            return out
        if isinstance(node, ast.Subscript):
            return self.eval(node.value)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.NamedExpr):
            taint = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                self._bind(node.target.id, taint)
            return taint
        if isinstance(node, (ast.Constant, ast.Lambda, ast.JoinedStr, ast.FormattedValue)):
            return EMPTY
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            # Comprehensions: evaluate sub-expressions for observation only.
            for sub in ast.walk(node):
                if isinstance(sub, (ast.BinOp, ast.Compare)) and sub is not node:
                    self.eval(sub)
            return EMPTY
        # Anything else: unknown.
        return EMPTY

    # ----------------------------------------------------------- statements

    def _bind(self, name: str, taint: Taints) -> None:
        if name not in self.frozen:
            self.env[name] = taint

    def _assign_target(self, target: ast.AST, stmt: ast.stmt, value: Taints, value_node: ast.AST | None) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, self.model.assign_name(target.id, stmt, value))
        elif isinstance(target, ast.Attribute):
            self.model.assign_attr(target, stmt, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            # Destructuring: distribute elementwise when shapes line up.
            elts = target.elts
            value_elts = value_node.elts if isinstance(value_node, (ast.Tuple, ast.List)) and len(value_node.elts) == len(elts) else None
            for i, t in enumerate(elts):
                if value_elts is not None:
                    self._assign_target(t, stmt, self.eval(value_elts[i]), value_elts[i])
                else:
                    self._assign_target(t, stmt, value, None)
        # Subscript stores and the rest: no binding (conservative).

    def exec_block(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self.exec(stmt)

    def _merged(self, branches: list[list[ast.stmt]]) -> None:
        base = dict(self.env)
        merged: dict[str, Taints] = {}
        for body in branches:
            self.env = dict(base)
            self.exec_block(body)
            for name, taint in self.env.items():
                merged[name] = merged.get(name, EMPTY) | taint
        self.env = merged

    def exec(self, stmt: ast.stmt) -> None:
        self.stmt = stmt
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, stmt, value, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign_target(stmt.target, stmt, self.eval(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            value = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                current = self.env.get(stmt.target.id, self.model.name_taint(stmt.target.id))
                # An in-place op is a binop between the current binding and
                # the operand — same mixing rules apply.
                synthetic = ast.BinOp(left=stmt.target, op=stmt.op, right=stmt.value)
                ast.copy_location(synthetic, stmt)
                result = self.model.binop(synthetic, current, value)
                self._bind(stmt.target.id, self.model.assign_name(stmt.target.id, stmt, result))
            elif isinstance(stmt.target, ast.Attribute):
                current = self.model.attr_taint(stmt.target, EMPTY)
                synthetic = ast.BinOp(left=stmt.target, op=stmt.op, right=stmt.value)
                ast.copy_location(synthetic, stmt)
                self.model.assign_attr(stmt.target, stmt, self.model.binop(synthetic, current, value))
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self._merged([stmt.body, stmt.orelse])
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval(stmt.iter)
            if isinstance(stmt.target, (ast.Name, ast.Tuple, ast.List)):
                self._assign_target(stmt.target, stmt, EMPTY, None)
            # Two passes: loop-carried taints reach their first use.
            for _ in range(2):
                self._merged([stmt.body, []])
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            for _ in range(2):
                self._merged([stmt.body, []])
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign_target(item.optional_vars, stmt, taint, None)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            branches = [stmt.body] + [h.body for h in stmt.handlers]
            self._merged(branches)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Global, ast.Nonlocal)):
            for name in stmt.names:
                self.frozen.add(name)
                self.env.pop(name, None)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        elif isinstance(stmt, (ast.Assert, ast.Raise)):
            if isinstance(stmt, ast.Assert):
                self.eval(stmt.test)
            elif stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested definitions are not executed inline
        # Pass/Break/Continue/Import...: nothing to do.


def run_dataflow(func: ast.AST, model: TaintModel) -> None:
    """Interpret one function body under ``model``.

    Parameters are seeded through :meth:`TaintModel.name_taint` on first
    read (no explicit entry binding needed).  ``func`` may be any node
    with a ``body`` list of statements (FunctionDef, Module, ...).
    """
    interp = _Interp(model)
    body = getattr(func, "body", None)
    if isinstance(body, list):
        interp.exec_block(body)
