"""Fig 17 — end-to-end comparison of all schemes on nuScenes-like clips."""

from conftest import CONFIGS
from test_fig16_e2e_robotcar import check_e2e_shape, print_e2e

from repro.experiments import run_fig16_17


def test_fig17_end_to_end_nuscenes(bench_once):
    rows = bench_once(run_fig16_17, CONFIGS["fig16"], datasets=("nuscenes",))
    print_e2e(rows, "Fig 17 — end-to-end comparison on nuScenes-like clips")
    check_e2e_shape(rows, "nuscenes")
