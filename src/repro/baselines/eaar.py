"""EAAR baseline (Liu et al., SIGCOMM 2019).

Designed for mobile AR: key frames are streamed and inferred in parallel
(low per-key-frame latency), encoded with ROI quality — regions around the
*cached* detection results get QP 30, everything else QP 40 — and all other
frames are served by local motion-vector tracking.  Fast, but the ROI comes
from stale detections, so objects that enter outside yesterday's boxes are
uploaded at low quality and missed; accuracy suffers exactly as in the
paper's comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import AnalyticsScheme, FrameResult, LatencyModel, PendingResults, SchemeRun
from repro.codec.encoder import EncoderConfig, VideoEncoder
from repro.codec.motion import estimate_motion
from repro.core.tracking import MotionVectorTracker
from repro.edge.detector import Detection
from repro.edge.server import EdgeServer
from repro.network.trace import BandwidthTrace
from repro.world.datasets import Clip

__all__ = ["EAARConfig", "EAARScheme"]


@dataclass(frozen=True)
class EAARConfig:
    """EAAR parameters (QP 30/40 are the paper's stated defaults)."""

    key_interval: int = 4
    roi_qp: float = 30.0
    background_qp: float = 40.0
    roi_dilate_blocks: int = 1
    hol_timeout: float = 0.5
    me_method: str = "hex"
    latency: LatencyModel = field(default_factory=LatencyModel)


class EAARScheme(AnalyticsScheme):
    name = "EAAR"

    def __init__(self, config: EAARConfig | None = None):
        self.config = config or EAARConfig()

    def _roi_offsets(self, detections: list[Detection], grid_shape: tuple[int, int], block: int) -> np.ndarray:
        """QP offset map: 0 inside (dilated) cached boxes, +delta outside."""
        cfg = self.config
        rows, cols = grid_shape
        roi = np.zeros(grid_shape, dtype=bool)
        for det in detections:
            x0, y0, x1, y1 = det.bbox
            c0 = int(np.clip(np.floor(x0 / block) - cfg.roi_dilate_blocks, 0, cols))
            c1 = int(np.clip(np.ceil(x1 / block) + cfg.roi_dilate_blocks, 0, cols))
            r0 = int(np.clip(np.floor(y0 / block) - cfg.roi_dilate_blocks, 0, rows))
            r1 = int(np.clip(np.ceil(y1 / block) + cfg.roi_dilate_blocks, 0, rows))
            roi[r0:r1, c0:c1] = True
        return np.where(roi, 0.0, cfg.background_qp - cfg.roi_qp)

    def run(self, clip: Clip, trace: BandwidthTrace, server: EdgeServer) -> SchemeRun:
        cfg = self.config
        lat = cfg.latency
        search_range = self.search_range_for(clip)
        encoder = VideoEncoder(
            EncoderConfig(me_method=cfg.me_method, search_range=search_range),
            tracer=self.tracer,
            sanitizer=self.sanitizer,
        )
        tracker = MotionVectorTracker()
        uplink = self.make_uplink(trace, hol_timeout=cfg.hol_timeout)
        pending = PendingResults()
        run = SchemeRun(scheme=self.name, clip_name=clip.name)
        prev_raw = None
        cached: list[Detection] = []
        block = encoder.config.block
        grid_shape = (clip.intrinsics.height // block, clip.intrinsics.width // block)

        for i in range(clip.n_frames):
            with self.tracer.frame(i):
                record = clip.frame(i)
                t_cap = record.time
                frame = record.image
                for _, _, detections in pending.due(t_cap):
                    tracker.update(detections)
                    cached = detections

                motion = None
                if prev_raw is not None:
                    motion = estimate_motion(
                        frame, prev_raw, method=cfg.me_method,
                        search_range=search_range, tracer=self.tracer,
                    )
                prev_raw = frame

                if i % cfg.key_interval == 0:
                    offsets = self._roi_offsets(cached, grid_shape, block)
                    encoded = encoder.encode(
                        frame, base_qp=cfg.roi_qp, qp_offsets=offsets, force_intra=True
                    )
                    enqueue_time = t_cap + lat.encode
                    skip_stale = uplink.queue_wait(enqueue_time) > cfg.hol_timeout
                    tx = None if skip_stale else uplink.transmit(i, encoded.size_bytes, enqueue_time)
                    if tx is None or tx.dropped:
                        detections = tracker.track(motion.mv) if motion is not None else tracker.detections
                        self._finish_frame(
                            run,
                            FrameResult(
                                index=i,
                                capture_time=t_cap,
                                detections=detections,
                                response_time=lat.encode + lat.track,
                                source="tracked",
                                dropped=True,
                            )
                        )
                        continue
                    server.reset()
                    result = server.process(encoded, record, arrival_time=tx.finish_time)
                    pending.add(result.result_time, i, result.detections)
                    self._finish_frame(
                        run,
                        FrameResult(
                            index=i,
                            capture_time=t_cap,
                            detections=result.detections,
                            response_time=result.result_time - t_cap,
                            source="edge",
                            bytes_sent=encoded.size_bytes,
                        )
                    )
                else:
                    if motion is not None:
                        detections = tracker.track(motion.mv)
                    else:
                        detections = tracker.detections
                    self._finish_frame(
                        run,
                        FrameResult(
                            index=i,
                            capture_time=t_cap,
                            detections=detections,
                            response_time=lat.motion_analysis + lat.track,
                            source="tracked",
                        )
                    )
        return run
