"""Property tests for trace generators and the uplink simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    UplinkSimulator,
    constant_trace,
    markov_trace,
    random_walk_trace,
    with_outages,
)


class TestTraceProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.floats(2.0, 40.0))
    def test_markov_trace_valid(self, seed, duration):
        tr = markov_trace(duration=duration, seed=seed)
        assert tr.times[0] == 0.0
        assert (np.diff(tr.times) > 0).all()
        assert (tr.rates >= 0).all()

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_outages_reduce_capacity(self, seed):
        base = random_walk_trace(2e6, duration=20.0, seed=seed)
        cut = with_outages(base, outage_duration=1.0, interval=4.0, horizon=20.0)
        assert cut.bits_between(0.0, 20.0) < base.bits_between(0.0, 20.0)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.floats(0.0, 10.0), st.floats(0.0, 10.0))
    def test_bits_between_additive(self, seed, a, b):
        tr = random_walk_trace(1.5e6, duration=12.0, seed=seed)
        t0, t1 = sorted((a, b))
        mid = (t0 + t1) / 2
        total = tr.bits_between(t0, t1)
        split = tr.bits_between(t0, mid) + tr.bits_between(mid, t1)
        assert total == pytest.approx(split, rel=1e-9, abs=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_rate_at_matches_segments(self, seed):
        tr = markov_trace(duration=10.0, seed=seed, state_rates=(1e6, 2e6, 3e6))
        for t, r in zip(tr.times, tr.rates):
            assert tr.rate_at(t + 1e-9) == r


class TestUplinkProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(0, 10_000),
        st.lists(st.tuples(st.floats(0.0, 5.0), st.integers(100, 50_000)), min_size=1, max_size=10),
    )
    def test_fifo_ordering(self, seed, jobs):
        """Finish times are non-decreasing in submission order and every
        transfer starts no earlier than its enqueue time."""
        tr = random_walk_trace(1e6, duration=30.0, seed=seed)
        link = UplinkSimulator(tr)
        jobs = sorted(jobs)  # non-decreasing enqueue times
        last_finish = 0.0
        for i, (t, size) in enumerate(jobs):
            res = link.transmit(i, size, t)
            assert res.start_time >= t
            assert res.finish_time >= res.start_time
            assert res.finish_time >= last_finish
            last_finish = res.finish_time

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1_000, 200_000))
    def test_transfer_conserves_bits(self, seed, size):
        tr = random_walk_trace(2e6, duration=30.0, seed=seed)
        link = UplinkSimulator(tr)
        res = link.transmit(0, size, 0.5)
        assert tr.bits_between(res.start_time, res.finish_time) == pytest.approx(size * 8, rel=1e-6)

    def test_queue_wait_reflects_backlog(self):
        link = UplinkSimulator(constant_trace(1e6))
        assert link.queue_wait(0.0) == 0.0
        link.transmit(0, 125_000, 0.0)  # busy until t=1
        assert link.queue_wait(0.2) == pytest.approx(0.8)
        assert link.queue_wait(2.0) == 0.0


class TestTraceIO:
    def test_roundtrip_exact(self, tmp_path):
        from repro.network import load_trace_csv, save_trace_csv

        tr = random_walk_trace(2e6, duration=8.0, seed=9)
        p = tmp_path / "trace.csv"
        save_trace_csv(tr, p)
        back = load_trace_csv(p)
        np.testing.assert_array_equal(back.times, tr.times)
        np.testing.assert_array_equal(back.rates, tr.rates)

    def test_bad_header(self, tmp_path):
        from repro.network import load_trace_csv

        p = tmp_path / "bad.csv"
        p.write_text("a,b\n0,1\n")
        with pytest.raises(ValueError):
            load_trace_csv(p)

    def test_non_numeric(self, tmp_path):
        from repro.network import load_trace_csv

        p = tmp_path / "bad.csv"
        p.write_text("time_s,rate_bps\n0.0,fast\n")
        with pytest.raises(ValueError):
            load_trace_csv(p)

    def test_empty(self, tmp_path):
        from repro.network import load_trace_csv

        p = tmp_path / "empty.csv"
        p.write_text("time_s,rate_bps\n")
        with pytest.raises(ValueError):
            load_trace_csv(p)

    def test_invariants_enforced(self, tmp_path):
        from repro.network import load_trace_csv

        p = tmp_path / "bad.csv"
        p.write_text("time_s,rate_bps\n1.0,1000\n2.0,1000\n")  # must start at 0
        with pytest.raises(ValueError):
            load_trace_csv(p)
