"""The complete foreground-extraction pipeline (Section III-C, Fig 8).

Per frame: rotation-corrected motion field -> ground estimation ->
region-growing clustering from the ground seeds -> cluster merging ->
convex foreground contours.  When the agent is stopped (no usable motion
vectors), the latest extracted foreground is reused, exactly as the paper
specifies; before anything has been extracted, the extractor falls back to
marking everything foreground (safe: full quality everywhere).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.clustering import Cluster, clusters_to_mask, merge_clusters, region_grow
from repro.core.ground import GroundEstimate, estimate_ground
from repro.geometry.camera import CameraIntrinsics

__all__ = ["ForegroundConfig", "ForegroundExtractor", "ForegroundResult"]


@dataclass(frozen=True)
class ForegroundConfig:
    """Tunables of foreground extraction.

    Attributes
    ----------
    min_magnitude:
        Minimum usable MV length, pixels.
    foe_tolerance:
        Maximum perpendicular MV component (pixels, w.r.t. the FOE radial)
        for a vector to count as static scene.
    similarity:
        Region-growing MV similarity threshold, pixels.
    merge_max_angle:
        Maximum mean-MV angle between merged clusters, radians.
    merge_max_distance:
        Maximum block distance between merged clusters.
    min_cluster_size:
        Clusters smaller than this are noise and dropped.
    dilate:
        Safety margin, in macroblocks, grown around the final foreground
        (objects' edges often straddle block boundaries).
    temporal_window:
        The published mask is the union of the last ``temporal_window``
        per-frame extractions.  MV evidence flickers (an object pacing the
        ego has near-zero relative motion on some frames), but objects
        move at most a block or two per frame, so a short union recovers
        the flickered frames at a small foreground-size cost.  1 disables.
    horizon_margin:
        Static-scene blocks more than this many pixels *above* the horizon
        (the FOE row) can never join a foreground cluster.  Objects stand
        on the ground, and nothing shorter than the camera height projects
        above the horizon — what does is buildings and sky, the main
        false-positive mass of the mask.  Laterally moving blocks
        (FOE-inconsistent) stay eligible: a close pedestrian's head can
        cross the line.  Negative disables the constraint.
    enable_merging:
        Ablation switch for the cluster-merging stage.
    enable_foe_filter:
        Ablation switch for the FOE-consistency noise filter.
    """

    min_magnitude: float = 0.3
    foe_tolerance: float = 0.45
    similarity: float = 1.5
    merge_max_angle: float = float(np.pi / 8)
    merge_max_distance: int = 2
    min_cluster_size: int = 2
    dilate: int = 1
    temporal_window: int = 3
    horizon_margin: float = 8.0
    enable_merging: bool = True
    enable_foe_filter: bool = True


@dataclass
class ForegroundResult:
    """Foreground extraction output for one frame.

    Attributes
    ----------
    mask:
        ``(rows, cols)`` foreground macroblock mask.
    clusters:
        Merged clusters (empty when cached or fallback).
    ground:
        The ground estimate (``None`` when cached or fallback).
    cached:
        True when the stopped-agent path reused the previous foreground.
    fallback:
        True when nothing could be extracted and the mask defaulted to
        all-foreground.
    """

    mask: np.ndarray
    clusters: list[Cluster]
    ground: GroundEstimate | None
    cached: bool = False
    fallback: bool = False

    @property
    def foreground_fraction(self) -> float:
        return float(self.mask.mean())


class ForegroundExtractor:
    """Stateful per-clip foreground extractor."""

    def __init__(self, intrinsics: CameraIntrinsics, config: ForegroundConfig | None = None, *, block: int = 16):
        self.intrinsics = intrinsics
        self.config = config or ForegroundConfig()
        self.block = block
        self._last_mask: np.ndarray | None = None
        self._recent_masks: list[np.ndarray] = []

    def reset(self) -> None:
        self._last_mask = None
        self._recent_masks = []

    def extract(
        self,
        mv: np.ndarray,
        *,
        moving: bool,
        foe: tuple[float, float] = (0.0, 0.0),
    ) -> ForegroundResult:
        """Extract the foreground of one frame.

        Parameters
        ----------
        mv:
            Rotation-corrected motion field, ``(rows, cols, 2)`` float.
        moving:
            Ego-motion judgement for this frame; when False the cached
            foreground is reused (Section III-A, FE component).
        foe:
            Calibrated FOE in centred image coordinates.
        """
        grid_shape = mv.shape[:2]
        cfg = self.config
        if not moving:
            if self._last_mask is not None:
                return ForegroundResult(
                    mask=self._last_mask.copy(), clusters=[], ground=None, cached=True
                )
            return ForegroundResult(
                mask=np.ones(grid_shape, dtype=bool), clusters=[], ground=None, fallback=True
            )

        ground = estimate_ground(
            mv,
            self.intrinsics,
            foe=foe,
            block=self.block,
            min_magnitude=cfg.min_magnitude,
            foe_tolerance=cfg.foe_tolerance if cfg.enable_foe_filter else float("inf"),
        )
        if not ground.found:
            if self._last_mask is not None:
                return ForegroundResult(mask=self._last_mask.copy(), clusters=[], ground=ground, cached=True)
            return ForegroundResult(
                mask=np.ones(grid_shape, dtype=bool), clusters=[], ground=ground, fallback=True
            )

        blocked = ground.ground_mask
        if cfg.horizon_margin >= 0:
            blocked = blocked | self._static_above_horizon(mv, foe, cfg)
        clusters = region_grow(
            mv,
            ground.seed_mask & ~blocked,
            blocked_mask=blocked,
            similarity=cfg.similarity,
            min_cluster_size=cfg.min_cluster_size,
            min_magnitude=cfg.min_magnitude,
        )
        if cfg.enable_merging:
            clusters = merge_clusters(
                clusters,
                max_angle=cfg.merge_max_angle,
                max_distance=cfg.merge_max_distance,
            )
        mask = clusters_to_mask(clusters, grid_shape)
        if cfg.dilate > 0 and mask.any():
            mask = _dilate(mask, cfg.dilate)
        # The convex contours may re-cover blocked territory; strike it out
        # again before publishing.
        if cfg.horizon_margin >= 0:
            mask &= ~self._static_above_horizon(mv, foe, cfg)
        # Temporal union over the last few raw extractions (flicker repair).
        if cfg.temporal_window > 1:
            self._recent_masks.append(mask.copy())
            self._recent_masks = self._recent_masks[-cfg.temporal_window :]
            for old in self._recent_masks[:-1]:
                mask |= old
        # The ground itself is never foreground, however the hulls landed.
        mask &= ~ground.ground_mask
        self._last_mask = mask.copy()
        return ForegroundResult(mask=mask, clusters=clusters, ground=ground)


    def _static_above_horizon(
        self, mv: np.ndarray, foe: tuple[float, float], cfg: ForegroundConfig
    ) -> np.ndarray:
        """Static-scene blocks above the horizon line (building/sky mass)."""
        from repro.core.grid import block_centers
        from repro.geometry.foe import radial_deviation

        x, y = block_centers(mv.shape[:2], self.intrinsics, block=self.block)
        vx, vy = mv[..., 0].astype(float), mv[..., 1].astype(float)
        static = radial_deviation(x, y, vx, vy, foe) <= cfg.foe_tolerance
        above = (y - foe[1]) < -cfg.horizon_margin
        return static & above


def _dilate(mask: np.ndarray, steps: int) -> np.ndarray:
    out = mask.copy()
    for _ in range(steps):
        grown = out.copy()
        grown[1:, :] |= out[:-1, :]
        grown[:-1, :] |= out[1:, :]
        grown[:, 1:] |= out[:, :-1]
        grown[:, :-1] |= out[:, 1:]
        out = grown
    return out
