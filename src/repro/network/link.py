"""Uplink transmit queue and outage detection.

Encoded frames enter a FIFO queue; the link drains them at the trace rate.
The agent arms a timer whenever a frame becomes head-of-line (Section
III-E): if the frame has not finished sending when the timer fires, the
agent declares a link outage, abandons the frame and falls back to local
motion-vector tracking until the link recovers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.trace import BandwidthTrace
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = ["TransmissionResult", "UplinkSimulator"]


@dataclass(frozen=True)
class TransmissionResult:
    """Outcome of transmitting one frame.

    Attributes
    ----------
    frame_index:
        Index of the frame.
    enqueue_time:
        When the frame entered the queue (capture + encode time).
    start_time:
        When it reached the head of the queue and began transmitting.
    finish_time:
        When the last bit arrived at the server (``inf`` if dropped).
    dropped:
        True when the head-of-line timer fired first.
    bytes:
        Frame size.
    """

    frame_index: int
    enqueue_time: float
    start_time: float
    finish_time: float
    dropped: bool
    bytes: int

    @property
    def uplink_delay(self) -> float:
        """Queueing plus transmission delay (``inf`` when dropped)."""
        return self.finish_time - self.enqueue_time


class UplinkSimulator:
    """Sequential (FIFO) uplink with a head-of-line drop timer.

    Parameters
    ----------
    trace:
        The bandwidth trace.
    hol_timeout:
        Seconds a frame may sit as head-of-line before the agent declares
        an outage and drops it; ``None`` disables dropping.
    tracer:
        Observability hook; every :meth:`transmit` records the *simulated*
        queueing/transmission delays and bytes as per-frame gauges (these
        are model outputs, not wall-clock spans).
    """

    def __init__(
        self,
        trace: BandwidthTrace,
        *,
        hol_timeout: float | None = None,
        tracer: Tracer | NullTracer = NULL_TRACER,
    ):
        self.trace = trace
        self.hol_timeout = hol_timeout
        self.tracer = tracer
        self._busy_until = 0.0

    def reset(self) -> None:
        self._busy_until = 0.0

    def transmit(self, frame_index: int, size_bytes: int, enqueue_time: float) -> TransmissionResult:
        """Transmit one frame, honouring FIFO order and the HoL timer.

        Frames must be offered in non-decreasing ``enqueue_time`` order (the
        agent produces them in capture order).
        """
        start = max(enqueue_time, self._busy_until)
        bits = float(size_bytes) * 8.0
        finish = self.trace.finish_time(start, bits)
        tr = self.tracer
        if tr.enabled:
            tr.gauge("uplink_queue_wait", start - enqueue_time)
            tr.gauge("uplink_bytes", float(size_bytes))
        if self.hol_timeout is not None and finish > start + self.hol_timeout:
            # Timer fires: the frame is abandoned.  The channel is released
            # at the timer expiry (partial transmission wasted).
            drop_at = start + self.hol_timeout
            self._busy_until = drop_at
            if tr.enabled:
                tr.count("uplink_dropped")
            return TransmissionResult(
                frame_index=frame_index,
                enqueue_time=enqueue_time,
                start_time=start,
                finish_time=float("inf"),
                dropped=True,
                bytes=size_bytes,
            )
        self._busy_until = finish
        if tr.enabled:
            tr.gauge("uplink_tx_time", finish - start)
        return TransmissionResult(
            frame_index=frame_index,
            enqueue_time=enqueue_time,
            start_time=start,
            finish_time=finish,
            dropped=False,
            bytes=size_bytes,
        )

    @property
    def busy_until(self) -> float:
        """Time at which the link becomes idle again."""
        return self._busy_until

    def clone(self) -> "UplinkSimulator":
        """An independent, untraced copy with the same trace/timer/backlog.

        The streaming backpressure queue uses clones to *forecast* when the
        link would drain its current occupants without mutating the live
        simulator (or double-counting tracer gauges).
        """
        twin = UplinkSimulator(self.trace, hol_timeout=self.hol_timeout)
        twin._busy_until = self._busy_until
        return twin

    def queue_wait(self, enqueue_time: float) -> float:
        """How long a frame offered at ``enqueue_time`` would wait before
        its first bit could be sent.  Agents use this to skip uploading
        frames that would be stale before transmission even starts
        (Section III-E: track "this and after frames until the link is
        recovered")."""
        return max(0.0, self._busy_until - enqueue_time)
