"""Precision-recall curves and per-frame series."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SchemeRun
from repro.edge.detector import Detection
from repro.edge.evaluation import match_greedy

__all__ = ["pr_curve", "response_time_series"]


def pr_curve(
    predictions_per_frame: list[list[Detection]],
    ground_truth_per_frame: list[list[Detection]],
    *,
    kind: str,
    iou_threshold: float = 0.5,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precision-recall curve for one class over a clip.

    Returns ``(recall, precision, thresholds)`` — the PR points swept over
    the confidence threshold, recall non-decreasing.  AP (as computed by
    :func:`repro.edge.evaluation.average_precision`) is the all-point
    integral under this curve.
    """
    if len(predictions_per_frame) != len(ground_truth_per_frame):
        raise ValueError("prediction and ground-truth lists must align per frame")
    records: list[tuple[float, bool]] = []
    n_gt = 0
    for preds, gts in zip(predictions_per_frame, ground_truth_per_frame):
        preds_k = [p for p in preds if p.kind == kind]
        gts_k = [g for g in gts if g.kind == kind]
        n_gt += len(gts_k)
        records.extend(match_greedy(preds_k, gts_k, iou_threshold=iou_threshold))
    if not records or n_gt == 0:
        return np.zeros(0), np.zeros(0), np.zeros(0)
    records.sort(key=lambda r: -r[0])
    conf = np.array([r[0] for r in records])
    tp = np.cumsum([r[1] for r in records])
    fp = np.cumsum([not r[1] for r in records])
    recall = tp / n_gt
    precision = tp / np.maximum(tp + fp, 1)
    return recall, precision, conf


def response_time_series(run: SchemeRun) -> tuple[np.ndarray, np.ndarray, list[str]]:
    """Per-frame ``(capture_times, response_times, sources)`` of a run.

    Dropped/never-answered frames carry ``inf`` response times; plot them
    as gaps.
    """
    times = np.array([f.capture_time for f in run.frames])
    responses = np.array([f.response_time for f in run.frames])
    sources = [f.source for f in run.frames]
    return times, responses, sources
