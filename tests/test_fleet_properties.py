"""Property tests for the fleet's cell allocator and batching front-end.

The two invariants the subsystem's correctness rests on:

- **cell conservation** — at any instant the allocated rates sum to at
  most the cell capacity, each agent gets at most its demand, and under
  fair share the total equals ``min(total demand, capacity)``;
- **batcher discipline** — FIFO dispatch order, causal batch membership
  (nobody is served before arriving), the max-wait bound, and exhaustive
  accounting (served + degraded + rejected == offered).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import (
    BatchingEdgeServer,
    CellSlice,
    FleetRequest,
    SharedCell,
    waterfill,
)
from repro.network import constant_trace, random_walk_trace

demands_st = st.lists(st.floats(0.0, 1e7), min_size=1, max_size=8)
weights_st = st.floats(0.25, 4.0)
capacity_st = st.floats(0.0, 2e7)


class TestWaterfillProperties:
    @settings(max_examples=100, deadline=None)
    @given(demands_st, capacity_st)
    def test_fair_share_conserves(self, demands, capacity):
        alloc = waterfill(demands, [1.0] * len(demands), capacity)
        assert all(a <= d + 1e-6 for a, d in zip(alloc, demands))
        assert all(a >= 0.0 for a in alloc)
        want = min(sum(demands), capacity)
        assert sum(alloc) == pytest.approx(want, rel=1e-9, abs=1e-3)

    @settings(max_examples=100, deadline=None)
    @given(demands_st, st.data(), capacity_st)
    def test_weighted_share_conserves(self, demands, data, capacity):
        weights = [data.draw(weights_st) for _ in demands]
        alloc = waterfill(demands, weights, capacity)
        assert all(a <= d + 1e-6 for a, d in zip(alloc, demands))
        want = min(sum(demands), capacity)
        assert sum(alloc) == pytest.approx(want, rel=1e-9, abs=1e-3)

    @settings(max_examples=100, deadline=None)
    @given(demands_st, capacity_st)
    def test_satisfiable_demands_granted_verbatim(self, demands, capacity):
        alloc = waterfill(demands, [1.0] * len(demands), capacity)
        # Exact float equality for every fully-granted agent — the
        # SharedCell identity fast path depends on it.
        for a, d in zip(alloc, demands):
            assert a == d or a < d


class TestSharedCellProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(1, 5),
        st.floats(1e5, 5e6),
        st.integers(0, 1000),
    )
    def test_allocation_never_exceeds_capacity(self, n_agents, capacity, seed):
        slices = [
            CellSlice(
                agent=f"a{i}",
                demand=random_walk_trace(1.5e6, duration=6.0, seed=seed + i),
                start=0.4 * i,
                duration=6.0,
            )
            for i in range(n_agents)
        ]
        out = SharedCell(capacity).allocate(slices)
        for k in range(80):
            t = 0.1 * k  # global instants across every activity window
            total = 0.0
            for sl, tr in zip(slices, out):
                if sl.start <= t < sl.start + sl.duration:
                    local = t - sl.start
                    rate = tr.rate_at(local)
                    assert rate <= sl.demand.rate_at(local) + 1e-6
                    total += rate
            assert total <= capacity + 1e-6

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 4), st.floats(5e6, 1e8))
    def test_ample_capacity_is_identity(self, n_agents, capacity):
        demands = [constant_trace(1e6) for _ in range(n_agents)]
        slices = [
            CellSlice(agent=f"a{i}", demand=d, duration=4.0)
            for i, d in enumerate(demands)
        ]
        out = SharedCell(capacity).allocate(slices)
        for d, o in zip(demands, out):
            assert o is d


requests_st = st.lists(
    st.floats(0.0, 5.0), min_size=1, max_size=40,
).map(lambda arrivals: [
    FleetRequest(agent=f"a{i % 3}", seq=i, frame_index=i, arrival=t)
    for i, t in enumerate(sorted(arrivals))
])
batcher_knobs_st = st.fixed_dictionaries({
    "workers": st.integers(1, 4),
    "max_batch": st.integers(1, 5),
    "max_wait": st.floats(0.0, 0.1),
    "queue_capacity": st.one_of(st.none(), st.integers(1, 4)),
    "admission": st.sampled_from(("reject", "degrade")),
})


class TestBatcherProperties:
    @settings(max_examples=100, deadline=None)
    @given(requests_st, batcher_knobs_st)
    def test_accounting_exhaustive(self, requests, knobs):
        b = BatchingEdgeServer(**knobs)
        outs = b.serve(requests)
        assert len(outs) == len(requests)
        statuses = [o.status for o in outs]
        assert set(statuses) <= {"served", "degraded", "rejected"}
        n_batched = sum(rec.size for rec in b.batches)
        assert n_batched == sum(s != "rejected" for s in statuses)

    @settings(max_examples=100, deadline=None)
    @given(requests_st, batcher_knobs_st)
    def test_fifo_and_causality(self, requests, knobs):
        b = BatchingEdgeServer(**knobs)
        outs = b.serve(requests)
        admitted = [o for o in outs if o.status != "rejected"]
        # Causality: nobody starts before arriving; finish after start.
        for o in admitted:
            assert o.start_time >= o.arrival - 1e-12
            assert o.finish_time > o.start_time
            assert o.queue_wait >= -1e-12
        # FIFO: outcomes are arrival-sorted, and dispatch order follows
        # arrival order — start times never go backwards.
        for prev, cur in zip(admitted, admitted[1:]):
            assert cur.start_time >= prev.start_time - 1e-12

    @settings(max_examples=100, deadline=None)
    @given(requests_st, batcher_knobs_st)
    def test_batch_invariants(self, requests, knobs):
        b = BatchingEdgeServer(**knobs)
        b.serve(requests)
        for rec in b.batches:
            assert 1 <= rec.size <= knobs["max_batch"]
            # The max-wait bound: a batch never idles past worker
            # availability plus the oldest member's allowed wait.
            bound = max(rec.worker_free, rec.oldest_arrival + knobs["max_wait"])
            assert rec.start <= bound + 1e-12
            assert rec.finish > rec.start

    @settings(max_examples=60, deadline=None)
    @given(requests_st, batcher_knobs_st)
    def test_unbounded_queue_never_rejects(self, requests, knobs):
        knobs = dict(knobs, queue_capacity=None)
        outs = BatchingEdgeServer(**knobs).serve(requests)
        assert all(o.status == "served" for o in outs)
