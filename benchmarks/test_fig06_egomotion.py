"""Fig 6 — ego-motion detection from the non-zero MV ratio eta."""

import numpy as np
from conftest import CONFIGS

from repro.experiments import print_table, run_fig06


def test_fig06_ego_motion_judgement(bench_once):
    study = bench_once(run_fig06, CONFIGS["fig06"])

    # Fig 6a: CDF of eta per motion state, at fixed probe points.
    probes = np.linspace(0.0, 1.0, 11)
    moving = np.searchsorted(np.sort(study.eta_moving), probes, side="right") / len(study.eta_moving)
    stopped = np.searchsorted(np.sort(study.eta_stopped), probes, side="right") / len(study.eta_stopped)
    print_table(
        ["eta", "CDF stopped", "CDF moving"],
        [[p, s, m] for p, s, m in zip(probes, stopped, moving)],
        title="Fig 6a — CDFs of eta (stopped vs moving ego)",
    )
    print_table(
        ["threshold", "accuracy", "n_moving", "n_stopped"],
        [[study.threshold, study.accuracy, len(study.eta_moving), len(study.eta_stopped)]],
        title="Fig 6a — threshold separation",
    )

    # Fig 6b: eta across a stop-and-go clip.
    times, etas, moving_gt = study.series
    print_table(
        ["t", "eta", "moving (gt)"],
        [[t, e, bool(m)] for t, e, m in list(zip(times, etas, moving_gt))[:: max(len(times) // 20, 1)]],
        title="Fig 6b — eta over a stop-and-go clip (subsampled)",
    )

    # Paper shape: the 0.15 threshold separates the states with ~98 %+
    # probability.
    assert study.accuracy > 0.95
    assert np.median(study.eta_moving) > 2 * study.threshold
    assert np.median(study.eta_stopped) < study.threshold
