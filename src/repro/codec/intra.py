"""Intra prediction for I-frames.

H.264 predicts each intra block from its already-reconstructed neighbours
(DC / horizontal / vertical modes and more); our encoder originally coded
I-frames against a flat mid-gray, which wastes bits on every smooth
gradient.  This module implements the three classic modes with per-block
mode selection, operating — exactly like a real codec — on *reconstructed*
neighbour pixels, so the decoder can reproduce the prediction without
access to the source frame.

The block scan is raster order; for each block the predictor is chosen by
SAD against the source, the residual is transform-coded, and the block is
reconstructed before its successors are visited.
"""

from __future__ import annotations

import numpy as np

from repro.codec.transform import dct_blocks, idct_blocks, qstep, transform_cost_bits

__all__ = ["intra_decode", "intra_encode", "intra_predict_block"]

#: Mode ids (2 bits of syntax per block).
MODE_DC = 0
MODE_HORIZONTAL = 1
MODE_VERTICAL = 2
_MODE_BITS = 2.0
_DEFAULT_DC = 128.0


def intra_predict_block(
    recon: np.ndarray, r0: int, c0: int, size: int, mode: int
) -> np.ndarray:
    """Prediction of the ``size``x``size`` block at ``(r0, c0)`` from the
    reconstructed pixels above and to the left of it.

    Unavailable neighbours (frame border) fall back to the other edge or,
    for the top-left block, to mid-gray — the H.264 convention.
    """
    left = recon[r0 : r0 + size, c0 - 1] if c0 > 0 else None
    top = recon[r0 - 1, c0 : c0 + size] if r0 > 0 else None
    if mode == MODE_HORIZONTAL:
        if left is None:
            mode = MODE_VERTICAL if top is not None else MODE_DC
        else:
            return np.repeat(left[:, None], size, axis=1)
    if mode == MODE_VERTICAL:
        if top is None:
            mode = MODE_HORIZONTAL if left is not None else MODE_DC
        else:
            return np.repeat(top[None, :], size, axis=0)
        if left is not None:
            return np.repeat(left[:, None], size, axis=1)
    # DC
    parts = []
    if left is not None:
        parts.append(left)
    if top is not None:
        parts.append(top)
    dc = float(np.mean(np.concatenate(parts))) if parts else _DEFAULT_DC
    return np.full((size, size), dc)


def intra_encode(
    frame: np.ndarray,
    qp_map: np.ndarray,
    *,
    block: int = 16,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Intra-code a whole frame with per-block mode selection.

    Parameters
    ----------
    frame:
        Source frame, float, dimensions multiples of ``block``.
    qp_map:
        ``(rows, cols)`` effective QP per macroblock (base + offsets).

    Returns
    -------
    ``(levels, modes, reconstruction, bits_per_mb)`` — the quantised
    coefficient levels (block-major, as :func:`dct_blocks` lays them out),
    the chosen mode per macroblock, the decoder-identical reconstruction,
    and per-macroblock coefficient+mode bits.
    """
    frame = np.asarray(frame, dtype=np.float64)
    h, w = frame.shape
    rows, cols = h // block, w // block
    qp_map = np.asarray(qp_map, dtype=float)
    if qp_map.shape != (rows, cols):
        raise ValueError(f"qp_map shape {qp_map.shape} != macroblock grid {(rows, cols)}")
    recon = np.zeros_like(frame)
    modes = np.zeros((rows, cols), dtype=np.int8)
    bits_per_mb = np.zeros((rows, cols), dtype=np.float64)
    sub = block // 8
    levels_full = np.zeros((rows * sub, 8, cols * sub, 8), dtype=np.float64)
    for r in range(rows):
        for c in range(cols):
            r0, c0 = r * block, c * block
            src = frame[r0 : r0 + block, c0 : c0 + block]
            best_mode, best_pred, best_sad = MODE_DC, None, np.inf
            for mode in (MODE_DC, MODE_HORIZONTAL, MODE_VERTICAL):
                pred = intra_predict_block(recon, r0, c0, block, mode)
                sad = float(np.abs(src - pred).sum())
                if sad < best_sad:
                    best_mode, best_pred, best_sad = mode, pred, sad
            residual = src - best_pred
            coeffs = dct_blocks(residual)
            # One macroblock has a single QP, so the quantiser step is a
            # scalar: dividing by it is IEEE-identical to quantize()'s
            # broadcast against an expanded per-8x8 step map, at a fraction
            # of the per-block overhead.
            q = qstep(float(qp_map[r, c]))
            levels = np.round(coeffs / q)
            levels_full[r * sub : (r + 1) * sub, :, c * sub : (c + 1) * sub, :] = levels
            bits_per_mb[r, c] = float(transform_cost_bits(levels, mb_size=8).sum()) + _MODE_BITS
            rec_res = idct_blocks(levels * q)
            recon[r0 : r0 + block, c0 : c0 + block] = np.clip(best_pred + rec_res, 0.0, 255.0)
            modes[r, c] = best_mode
    return levels_full, modes, recon, bits_per_mb


def intra_decode(
    levels: np.ndarray,
    modes: np.ndarray,
    qp_map: np.ndarray,
    *,
    block: int = 16,
) -> np.ndarray:
    """Reconstruct an intra-coded frame from its levels and modes.

    Replays :func:`intra_encode`'s raster scan: each block's prediction
    comes from the already-reconstructed neighbours, then the dequantised
    residual is added — bit-exact with the encoder's reconstruction.
    """
    rows, cols = modes.shape
    sub = block // 8
    qp_map = np.asarray(qp_map, dtype=float)
    recon = np.zeros((rows * block, cols * block), dtype=np.float64)
    for r in range(rows):
        for c in range(cols):
            r0, c0 = r * block, c * block
            pred = intra_predict_block(recon, r0, c0, block, int(modes[r, c]))
            lv = levels[r * sub : (r + 1) * sub, :, c * sub : (c + 1) * sub, :]
            # Scalar dequantise — same step value quantize/dequantize would
            # broadcast, see intra_encode.
            rec_res = idct_blocks(lv * qstep(float(qp_map[r, c])))
            recon[r0 : r0 + block, c0 : c0 + block] = np.clip(pred + rec_res, 0.0, 255.0)
    return recon
