"""Pluggable backends for the codec's hot kernels, bit-exact by contract.

PR 5 vectorised the encoder hot loop as far as single-threaded NumPy goes;
this package adds the next multiplier: a small registry that lets
accelerated implementations of the extracted kernels — exhaustive/TESA
block search, the pattern-search sweeps, motion compensation, and the
DCT/quantiser trio — be swapped in behind the ``KernelBackend`` seam.

**Contract.**  Every backend must be *bit-identical* to the ``numpy``
reference: the kernel bit-exactness suite (``tests/test_codec_kernels.py``)
and the golden e2e digest are parametrized over every registered backend,
and backends that cannot prove themselves (a failed self-probe, a missing
compiler, an absent optional dependency) report unavailable and the
dispatch falls through to the reference implementation per kernel.

Backends
--------
``numpy``
    The reference: all kernel hooks are ``None`` so the codec modules run
    their own (already vectorised) implementations.  Always available.
``sharded``
    A persistent ``multiprocessing`` fork-pool sharding macroblock *rows*
    across workers, with shared-memory frame buffers.  Row bands are
    computed with the very same reference code (``row0``/``row_count``
    banding) and merged in row order, so results are bit-identical to the
    reference for any worker count.
``cext``
    Runtime-compiled C (via the system ``cc``/``gcc``) for the per-block
    sequential pattern-search sweeps and motion compensation.  The C code
    replicates NumPy's pairwise summation and the exact IEEE operation
    order of the reference; a self-probe at activation verifies bitwise
    agreement and the backend reports unavailable otherwise.
``numba``
    Optional, import-guarded JIT versions of the same sweeps; warmed at
    activation and self-probed like ``cext``.

Thread-safety / pool ownership
------------------------------
Backends are process-global (one active backend per process, like the
tracer).  The ``sharded`` pool must be created by the thread that calls
:func:`activate` **before** the ``repro.stream``/``repro.fleet`` worker
threads start, and every pooled kernel call is serialised through the
backend's own lock — see ``sharded.py`` for the S012 lock-discipline
annotations.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = [
    "KERNEL_NAMES",
    "KernelBackend",
    "activate",
    "active",
    "available_backends",
    "backend",
    "override",
    "register_backend",
    "registered_backends",
    "use_backend",
]

#: The kernel hooks a backend may override (``None`` = reference path).
KERNEL_NAMES = (
    "exhaustive_search",  # full-frame ESA/TESA block search
    "motion_compensate",  # MV-field prediction (bilinear taps)
    "dct_blocks",  # 8x8 forward DCT over a plane
    "quantize",  # per-macroblock-QP quantiser
    "dequantize",  # inverse quantiser
    "descend_sweep",  # pattern-search descent (DIA/HEX cores)
    "seed_sweep",  # coarse absolute-grid seeding (HEX/UMH)
    "offset_sweep",  # relative clipped offset pass (UMH cross/hexagon)
)


class KernelBackend:
    """Base class / protocol for one kernel backend.

    Subclasses set :attr:`name` and assign callables to any subset of the
    :data:`KERNEL_NAMES` hooks; hooks left ``None`` fall through to the
    reference implementation at the dispatch site.  ``available()`` must
    be cheap after the first call; ``warm()`` runs once at activation and
    may compile / fork / JIT.
    """

    name: str = "base"

    # Kernel hooks — reference fallback when None.
    exhaustive_search: Callable | None = None
    motion_compensate: Callable | None = None
    dct_blocks: Callable | None = None
    quantize: Callable | None = None
    dequantize: Callable | None = None
    descend_sweep: Callable | None = None
    seed_sweep: Callable | None = None
    offset_sweep: Callable | None = None

    def available(self) -> bool:
        """Whether this backend can run (deps present, self-probe passed)."""
        return True

    def why_unavailable(self) -> str | None:
        """Human-readable reason when :meth:`available` is False."""
        return None

    def warm(self) -> None:
        """One-time activation work (compile, fork pool, JIT-warm)."""

    def configure(self, *, workers: int | None = None) -> None:
        """Apply runtime knobs (worker count); default backends ignore them."""

    def close(self) -> None:
        """Release pools/arenas; the backend may be re-warmed later."""


_REGISTRY: dict[str, Callable[[], KernelBackend]] = {}
_ORDER: list[str] = []
_instances: dict[str, KernelBackend] = {}
_lock = threading.Lock()


def register_backend(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register a backend factory under ``name`` (first registration wins)."""
    with _lock:
        if name not in _REGISTRY:
            _REGISTRY[name] = factory
            _ORDER.append(name)


def registered_backends() -> tuple[str, ...]:
    """All registered backend names, in registration order."""
    return tuple(_ORDER)


def backend(name: str) -> KernelBackend:
    """The (cached) backend instance for ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; registered: {tuple(_ORDER)}"
        ) from None
    with _lock:
        inst = _instances.get(name)
        if inst is None:
            inst = _instances[name] = factory()
    return inst


def available_backends() -> tuple[str, ...]:
    """Names of the backends that can actually run on this host."""
    return tuple(n for n in _ORDER if backend(n).available())


class _NumpyReference(KernelBackend):
    """The reference backend: every hook ``None`` → codec runs its own code."""

    name = "numpy"


_active: KernelBackend = _NumpyReference()


def active() -> KernelBackend:
    """The currently active backend (the ``numpy`` reference by default)."""
    return _active


def override(kernel: str) -> Callable | None:
    """The active backend's hook for ``kernel``, or ``None`` (reference).

    This is the per-call dispatch primitive the codec modules use; it must
    stay a single attribute lookup.
    """
    return getattr(_active, kernel)


def activate(name: str, *, workers: int | None = None) -> KernelBackend:
    """Make ``name`` the process-wide active backend (warming it first).

    Must be called from the main/driver thread before any
    ``repro.stream``/``repro.fleet`` worker threads start — pooled
    backends fork their workers here (pool-ownership rule).
    """
    global _active
    inst = backend(name)
    inst.configure(workers=workers)
    if not inst.available():
        reason = inst.why_unavailable() or "unavailable on this host"
        raise RuntimeError(f"kernel backend {name!r} is unavailable: {reason}")
    inst.warm()
    _active = inst
    return inst


@contextmanager
def use_backend(name: str, *, workers: int | None = None) -> Iterator[KernelBackend]:
    """Context manager: activate ``name``, restore the previous backend after."""
    global _active
    prev = _active
    inst = activate(name, workers=workers)
    try:
        yield inst
    finally:
        _active = prev


def _register_builtin() -> None:
    register_backend("numpy", _NumpyReference)
    from repro.kernels.cext import CExtBackend
    from repro.kernels.numba_backend import NumbaBackend
    from repro.kernels.sharded import ShardedBackend

    register_backend("sharded", ShardedBackend)
    register_backend("cext", CExtBackend)
    register_backend("numba", NumbaBackend)


_register_builtin()
