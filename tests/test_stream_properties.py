"""Hypothesis property tests for the backpressure queue.

Invariants, for every policy / capacity / workload:

- **conservation** — every submitted job is sealed with exactly one status
  from {delivered, degraded, dropped};
- **order** — jobs that reach the wire transmit in submission order
  (monotone start and finish times);
- **capacity** — at no instant do more than ``capacity`` jobs hold a queue
  slot (occupancy measured from the sealed ``[admit, release)`` intervals).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import constant_trace
from repro.stream import POLICIES, BackpressureQueue

pytestmark = pytest.mark.timeout(300)


workloads = st.builds(
    lambda sizes, gaps: [
        (i, size, sum(gaps[: i + 1]))
        for i, (size, gap) in enumerate(zip(sizes, gaps))
    ],
    st.lists(st.integers(1, 40_000), min_size=1, max_size=40),
    st.lists(st.floats(0.0, 0.5, allow_nan=False), min_size=40, max_size=40),
)


@settings(max_examples=60, deadline=None)
@given(
    jobs=workloads,
    capacity=st.one_of(st.none(), st.integers(1, 4)),
    policy=st.sampled_from(POLICIES),
    rate=st.floats(20_000.0, 2_000_000.0),
    hol=st.one_of(st.none(), st.floats(0.02, 0.5)),
)
def test_queue_invariants(jobs, capacity, policy, rate, hol):
    queue = BackpressureQueue(
        constant_trace(rate), capacity=capacity, policy=policy, hol_timeout=hol,
    )
    admissions = [queue.submit(i, size, t) for i, size, t in jobs]
    outcomes = queue.close()

    # Conservation: one sealed outcome per submission, exactly one status.
    assert len(outcomes) == len(jobs)
    assert [o.seq for o in outcomes] == [a.seq for a in admissions]
    for outcome in outcomes:
        assert outcome.status in ("delivered", "degraded", "dropped")
        if outcome.status == "dropped":
            assert outcome.sent_bytes == 0
            assert outcome.reason in ("hol", "evicted", "capacity")
        else:
            assert outcome.sent_bytes > 0
            assert outcome.finish_time == outcome.release_time

    # Order: whatever reached the wire did so FIFO in submission order.
    on_wire = [o for o in outcomes if o.status in ("delivered", "degraded")]
    starts = [o.start_time for o in on_wire]
    finishes = [o.finish_time for o in on_wire]
    assert starts == sorted(starts)
    assert finishes == sorted(finishes)
    for o in on_wire:
        assert o.enqueue_time <= o.start_time < o.finish_time

    # Capacity: occupancy from [admit, release) intervals never exceeds k.
    if capacity is not None:
        intervals = [
            (o.admit_time, o.release_time)
            for o in outcomes
            if o.release_time > o.admit_time
        ]
        for probe, _ in intervals:
            occupancy = sum(1 for a, r in intervals if a <= probe < r)
            assert occupancy <= capacity


@settings(max_examples=40, deadline=None)
@given(
    jobs=workloads,
    capacity=st.one_of(st.none(), st.integers(1, 4)),
    policy=st.sampled_from(POLICIES),
    rate=st.floats(20_000.0, 2_000_000.0),
)
def test_queue_is_replayable(jobs, capacity, policy, rate):
    """Same submissions → identical sealed outcomes (pure virtual time)."""

    def run():
        queue = BackpressureQueue(constant_trace(rate), capacity=capacity, policy=policy)
        for i, size, t in jobs:
            queue.submit(i, size, t)
        return [o.key() for o in queue.close()]

    assert run() == run()


@settings(max_examples=40, deadline=None)
@given(jobs=workloads, rate=st.floats(20_000.0, 2_000_000.0))
def test_unbounded_queue_matches_plain_fifo(jobs, rate):
    """capacity=None degenerates to UplinkSimulator arithmetic exactly."""
    from repro.network.link import UplinkSimulator

    queue = BackpressureQueue(constant_trace(rate), capacity=None, hol_timeout=0.2)
    fifo = UplinkSimulator(constant_trace(rate), hol_timeout=0.2)
    for i, size, t in jobs:
        queue.submit(i, size, t)
    for outcome, (i, size, t) in zip(queue.close(), jobs):
        tx = fifo.transmit(i, size, t)
        assert outcome.start_time == tx.start_time
        if tx.dropped:
            assert outcome.status == "dropped"
            assert outcome.reason == "hol"
        else:
            assert outcome.status == "delivered"
            assert outcome.finish_time == tx.finish_time
