"""Extension study — edge-server scalability.

The paper's system model demands the system stay "lightweight and
scalable given ... the potential huge number of agents" but never measures
multi-agent behaviour.  This study does: N agents stream concurrently to
one serverless edge fabric with a fixed number of inference workers, and
the response time per scheme is measured as N grows.

Since PR 9 the study runs on :class:`~repro.fleet.FleetRunner` — the
repo's one source of multi-agent truth.  Each scheme's agent pool runs
its belief phase **once** at the largest N; every requested fleet size is
then settled as a prefix of that pool against a ``workers``-worker edge
with ``max_batch=1`` / ``max_wait=0`` (pure FIFO queueing, no batching —
the shared-fabric contention the study isolates).  Each agent's uplink
is independent (``cell_mbps=None``: cellular links are per-agent), so
only the inference stage contends.  Schemes that upload (and infer)
every frame — DiVE, DDS — load the fabric N times harder than the
key-frame schemes, which is exactly the trade-off worth seeing.

The old post-hoc heap replay (:func:`replay_shared_server`) is kept for
compatibility but deprecated: it reconstructs arrivals from recorded
responses instead of replaying the recorded requests themselves, and
knows nothing of batching or admission control.
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import dataclass

import numpy as np

from repro.baselines import EAARScheme, O3Scheme
from repro.baselines.base import SchemeRun
from repro.core.agent import DiVEScheme
from repro.experiments.config import ExperimentConfig

__all__ = ["ScalabilityResult", "replay_shared_server", "run_scalability"]

_INFERENCE = 0.020
_DOWNLINK = 0.010


@dataclass
class ScalabilityResult:
    """One point: scheme x number of agents -> mean response time."""

    scheme: str
    n_agents: int
    response_time: float
    inference_load: float  # inference requests per second offered to the fabric


def replay_shared_server(
    runs: list[SchemeRun],
    *,
    workers: int = 1,
    inference_latency: float = _INFERENCE,
    downlink_latency: float = _DOWNLINK,
) -> float:
    """Mean response time when the runs' edge inferences share W workers.

    .. deprecated::
        Superseded by :class:`repro.fleet.FleetRunner` (and the
        fleet-based :func:`run_scalability`), which replays the actual
        recorded requests with batching and admission control instead of
        reconstructing arrivals from recorded responses.

    Edge-frame arrival times are reconstructed from each frame's recorded
    response (arrival = capture + response - inference - downlink), pooled
    across agents, and served in arrival order by ``workers`` parallel
    workers; locally-served frames keep their original response times.
    """
    warnings.warn(
        "replay_shared_server is deprecated; use repro.fleet.FleetRunner "
        "(run_scalability already does)",
        DeprecationWarning,
        stacklevel=2,
    )
    requests: list[tuple[float, int, int]] = []  # (arrival, run_idx, frame_idx)
    for ri, run in enumerate(runs):
        for fi, frame in enumerate(run.frames):
            if frame.source == "edge" and np.isfinite(frame.response_time):
                arrival = frame.capture_time + frame.response_time - inference_latency - downlink_latency
                requests.append((arrival, ri, fi))
    requests.sort()
    free: list[float] = [0.0] * workers
    heapq.heapify(free)
    new_response: dict[tuple[int, int], float] = {}
    for arrival, ri, fi in requests:
        start = max(arrival, heapq.heappop(free))
        done = start + inference_latency
        heapq.heappush(free, done)
        capture = runs[ri].frames[fi].capture_time
        new_response[(ri, fi)] = done + downlink_latency - capture

    times = []
    for ri, run in enumerate(runs):
        for fi, frame in enumerate(run.frames):
            if (ri, fi) in new_response:
                times.append(new_response[(ri, fi)])
            elif np.isfinite(frame.response_time):
                times.append(frame.response_time)
    return float(np.mean(times)) if times else float("inf")


def run_scalability(
    config: ExperimentConfig | None = None,
    *,
    agent_counts: tuple[int, ...] = (1, 2, 4, 8),
    bandwidth_mbps: float = 3.0,
    workers: int = 1,
    dataset: str = "nuscenes",
    scheme_factories=(DiVEScheme, EAARScheme, O3Scheme),
) -> list[ScalabilityResult]:
    """Measure response time vs. concurrent agents per scheme.

    Built on :class:`~repro.fleet.FleetRunner`: the agent pool's belief
    phase runs once at ``max(agent_counts)``, then every fleet size is
    settled as a prefix of that pool (forked, so settles never interact).
    """
    # Imported here, not at module top: repro.fleet composes the
    # experiments config, so a top-level import would be circular.
    from repro.fleet import SCHEMES, FleetConfig, FleetRunner

    config = config or ExperimentConfig()
    max_agents = max(agent_counts)
    name_of = {cls: name for name, cls in SCHEMES.items()}
    results: list[ScalabilityResult] = []
    for factory in scheme_factories:
        if factory not in name_of:
            raise ValueError(
                f"{factory!r} is not a registered fleet scheme; "
                f"expected one of {sorted(SCHEMES)}")
        fleet_config = FleetConfig(
            n_agents=max_agents,
            n_frames=config.n_frames,
            schemes=(name_of[factory],),
            datasets=(dataset,),
            seed=0,
            stagger=0.0,
            demand_mbps=bandwidth_mbps,
            uplink="constant",
            cell_mbps=None,      # cellular links are per-agent
            workers=workers,
            max_batch=1,         # pure FIFO queueing: isolate contention
            max_wait=0.0,
            queue_capacity=None,
            detector_seed=config.detector_seed,
        )
        runner = FleetRunner(fleet_config)
        specs = fleet_config.specs()
        agent_runs = runner.run_agents(specs)
        for n in agent_counts:
            settled = runner.settle(
                specs[:n], [ar.fork() for ar in agent_runs[:n]])
            duration = max(r.frames[-1].capture_time for r in settled.runs) + 1e-9
            n_inferences = sum(
                1 for r in settled.runs for f in r.frames if f.source == "edge")
            results.append(
                ScalabilityResult(
                    scheme=settled.runs[0].scheme,
                    n_agents=n,
                    response_time=settled.stats.mean_response,
                    inference_load=n_inferences / duration,
                )
            )
    return results
