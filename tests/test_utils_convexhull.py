"""Tests for convex hulls and polygon utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    convex_hull,
    point_in_polygon,
    points_in_polygon,
    polygon_area,
    rasterize_polygon,
)


class TestConvexHull:
    def test_square(self):
        pts = np.array([[0, 0], [1, 0], [1, 1], [0, 1], [0.5, 0.5]])
        hull = convex_hull(pts)
        assert len(hull) == 4
        assert {tuple(p) for p in hull} == {(0, 0), (1, 0), (1, 1), (0, 1)}

    def test_interior_points_removed(self):
        rng = np.random.default_rng(0)
        interior = rng.uniform(0.2, 0.8, size=(50, 2))
        corners = np.array([[0, 0], [1, 0], [1, 1], [0, 1]])
        hull = convex_hull(np.vstack([interior, corners]))
        assert {tuple(p) for p in hull} == {tuple(p) for p in corners}

    def test_single_point(self):
        hull = convex_hull(np.array([[3.0, 4.0]]))
        assert hull.shape == (1, 2)

    def test_two_points(self):
        hull = convex_hull(np.array([[0.0, 0.0], [2.0, 2.0]]))
        assert hull.shape == (2, 2)

    def test_collinear(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        hull = convex_hull(pts)
        assert len(hull) == 2
        assert {tuple(p) for p in hull} == {(0.0, 0.0), (3.0, 3.0)}

    def test_duplicates_ignored(self):
        pts = np.array([[0, 0], [0, 0], [1, 0], [1, 1], [1, 1], [0, 1]])
        hull = convex_hull(pts)
        assert len(hull) == 4

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            convex_hull(np.zeros((4, 3)))

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False),
                st.floats(-100, 100, allow_nan=False),
            ),
            min_size=3,
            max_size=40,
        )
    )
    def test_all_points_inside_hull(self, pts):
        pts = np.array(pts, dtype=float)
        hull = convex_hull(pts)
        if len(hull) < 3:
            return  # degenerate input
        inside = points_in_polygon(pts, hull)
        assert inside.all()

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(-20, 20), st.integers(-20, 20)),
            min_size=3,
            max_size=30,
        )
    )
    def test_hull_is_convex(self, pts):
        hull = convex_hull(np.array(pts, dtype=float))
        n = len(hull)
        if n < 3:
            return
        # Every consecutive turn has the same orientation sign.
        crosses = []
        for i in range(n):
            o, a, b = hull[i], hull[(i + 1) % n], hull[(i + 2) % n]
            crosses.append((a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0]))
        crosses = np.array(crosses)
        assert (crosses > -1e-9).all() or (crosses < 1e-9).all()

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(-10, 10), st.integers(-10, 10)),
            min_size=3,
            max_size=25,
        )
    )
    def test_hull_idempotent(self, pts):
        hull1 = convex_hull(np.array(pts, dtype=float))
        hull2 = convex_hull(hull1)
        assert {tuple(p) for p in hull1} == {tuple(p) for p in hull2}


class TestPolygonArea:
    def test_unit_square(self):
        assert polygon_area(np.array([[0, 0], [1, 0], [1, 1], [0, 1]])) == pytest.approx(1.0)

    def test_triangle(self):
        assert polygon_area(np.array([[0, 0], [4, 0], [0, 3]])) == pytest.approx(6.0)

    def test_degenerate(self):
        assert polygon_area(np.array([[0, 0], [1, 1]])) == 0.0

    def test_orientation_invariant(self):
        sq = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        assert polygon_area(sq) == pytest.approx(polygon_area(sq[::-1]))


class TestPointInPolygon:
    SQUARE = np.array([[0, 0], [4, 0], [4, 4], [0, 4]], dtype=float)

    def test_inside(self):
        assert point_in_polygon(np.array([2.0, 2.0]), self.SQUARE)

    def test_outside(self):
        assert not point_in_polygon(np.array([5.0, 2.0]), self.SQUARE)

    def test_vertex_counts_inside(self):
        assert point_in_polygon(np.array([0.0, 0.0]), self.SQUARE)

    def test_edge_counts_inside(self):
        assert point_in_polygon(np.array([2.0, 0.0]), self.SQUARE)

    def test_vectorised_matches_scalar(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(-1, 5, size=(200, 2))
        vec = points_in_polygon(pts, self.SQUARE)
        for p, v in zip(pts, vec):
            assert point_in_polygon(p, self.SQUARE) == v

    def test_concave_polygon(self):
        # L-shape: the notch must be outside.
        poly = np.array([[0, 0], [4, 0], [4, 2], [2, 2], [2, 4], [0, 4]], dtype=float)
        assert point_in_polygon(np.array([1.0, 3.0]), poly)
        assert not point_in_polygon(np.array([3.0, 3.0]), poly)

    def test_empty_polygon(self):
        assert not points_in_polygon(np.array([[0.0, 0.0]]), np.zeros((0, 2))).any()


class TestRasterizePolygon:
    def test_full_grid(self):
        poly = np.array([[-1, -1], [10, -1], [10, 10], [-1, 10]], dtype=float)
        mask = rasterize_polygon(poly, (4, 5))
        assert mask.all()

    def test_half_plane(self):
        # Triangle covering the top-left corner cells.
        poly = np.array([[-0.5, -0.5], [3.5, -0.5], [-0.5, 3.5]], dtype=float)
        mask = rasterize_polygon(poly, (4, 4))
        assert mask[0, 0]
        assert not mask[3, 3]

    def test_area_consistency(self):
        poly = np.array([[1, 1], [8, 1], [8, 6], [1, 6]], dtype=float)
        mask = rasterize_polygon(poly, (10, 10))
        # Cells with centres in [1,8]x[1,6] -> 8 columns x 6 rows.
        assert mask.sum() == 8 * 6
