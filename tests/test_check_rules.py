"""Tests for the repro.check static-analysis engine and rule set.

Every rule gets one true-positive and one true-negative fixture snippet,
checked through :func:`repro.check.check_source` with a path chosen to
satisfy the rule's scope.  The shipped tree itself must lint clean.
"""

import json
from pathlib import Path

import pytest

from repro.check import (
    Finding,
    all_rules,
    check_paths,
    check_source,
    render_json,
    render_text,
    rule_table,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

#: rule id -> (scoped path, true-positive snippet, true-negative snippet)
FIXTURES = {
    "S001": (
        "src/repro/utils/x.py",
        "import numpy as np\nrng = np.random.default_rng()\n",
        "import numpy as np\nrng = np.random.default_rng(42)\n",
    ),
    "S002": (
        "src/repro/codec/x.py",
        "import time\nstart = time.time()\n",
        "import time\nstart = time.perf_counter()\n",
    ),
    "S003": (
        "src/repro/codec/x.py",
        "import numpy as np\nbuf = np.zeros((4, 4))\n",
        "import numpy as np\nbuf = np.zeros((4, 4), dtype=np.float32)\n",
    ),
    "S004": (
        "src/repro/core/x.py",
        "base_qp = 90\n",
        "base_qp = 30\n",
    ),
    "S005": (
        "src/repro/network/x.py",
        "size_bytes = total_bits + header_bits\n",
        "size_bytes = (total_bits + header_bits) / 8\n",
    ),
    "S006": (
        "src/repro/utils/x.py",
        "def f(items=[]):\n    return items\n",
        "def f(items=None):\n    return items or []\n",
    ),
    "S007": (
        "src/repro/utils/x.py",
        "try:\n    g()\nexcept:\n    pass\n",
        "try:\n    g()\nexcept ValueError:\n    pass\n",
    ),
    "S008": (
        "src/repro/core/x.py",
        "def run(clip):\n    for i in range(clip.n_frames):\n        process(clip.frame(i))\n",
        (
            "def run(clip, tracer):\n"
            "    for i in range(clip.n_frames):\n"
            "        with tracer.span('frame'):\n"
            "            process(clip.frame(i))\n"
        ),
    ),
    "S009": (
        "src/repro/analysis/x.py",
        "def report(x):\n    print(x)\n",
        "def report(x):\n    return str(x)\n",
    ),
    "S010": (
        "src/repro/utils/x.py",
        "import random\n",
        "import numpy as np\n",
    ),
    "S011": (
        "src/repro/codec/x.py",
        (
            "import numpy as np\n"
            "def f(frames):\n"
            "    for fr in frames:\n"
            "        buf = np.zeros((16, 16), dtype=np.float64)\n"
            "        buf += fr\n"
        ),
        (
            "import numpy as np\n"
            "def f(frames):\n"
            "    buf = np.zeros((16, 16), dtype=np.float64)\n"
            "    for fr in frames:\n"
            "        buf[:] = fr\n"
        ),
    ),
    "S012": (
        "src/repro/stream/x.py",
        (
            "import threading\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
            "    def peek(self):\n"
            "        return self._n\n"
        ),
        (
            "import threading\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
            "    def peek(self):\n"
            "        with self._lock:\n"
            "            return self._n\n"
        ),
    ),
    "S013": (
        "src/repro/network/x.py",
        (
            "def frame_budget(header_bits, size_bytes):\n"
            "    payload = size_bytes\n"
            "    return header_bits + payload\n"
        ),
        (
            "def frame_budget(header_bits, size_bytes):\n"
            "    payload = size_bytes * 8\n"
            "    return header_bits + payload\n"
        ),
    ),
    "S015": (
        "src/repro/stream/x.py",
        (
            "def pump(frames, metrics, t):\n"
            "    for fr in frames:\n"
            "        metrics.counter('frames_seen').inc(1.0, at=t)\n"
        ),
        (
            "def pump(frames, metrics, tracer, t):\n"
            "    seen = metrics.counter('frames_seen')\n"
            "    for fr in frames:\n"
            "        seen.inc(1.0, at=t)\n"
            "        tracer.gauge('qp', 31.0)\n"
        ),
    ),
    "S016": (
        "src/repro/fleet/x.py",
        (
            "def settle(server, encoded, record, t):\n"
            "    return server.process(encoded, record, arrival_time=t)\n"
        ),
        (
            "def settle(batcher, requests):\n"
            "    return batcher.serve(requests)\n"
        ),
    ),
    "S017": (
        "src/repro/experiments/x.py",
        (
            "from repro.codec.motion import _exhaustive_search\n"
            "def search(cur, ref):\n"
            "    return _exhaustive_search(cur, ref, search_range=8, block=16,\n"
            "                              lambda_mv=4.0, transformed=False, subpel=True)\n"
        ),
        (
            "from repro.codec.motion import estimate_motion\n"
            "def search(cur, ref):\n"
            "    return estimate_motion(cur, ref, method='esa', search_range=8)\n"
        ),
    ),
    "S014": (
        "src/repro/codec/x.py",
        (
            "import numpy as np\n"
            "def jitter(scale):\n"
            "    return np.random.default_rng().standard_normal() * scale\n"
            "def encode(frame):\n"
            "    return frame + jitter(0.5)\n"
        ),
        (
            "import numpy as np\n"
            "def jitter(rng, scale):\n"
            "    return rng.standard_normal() * scale\n"
            "def encode(frame, rng):\n"
            "    return frame + jitter(rng, 0.5)\n"
        ),
    ),
}


class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id", sorted(FIXTURES))
    def test_true_positive(self, rule_id):
        path, positive, _ = FIXTURES[rule_id]
        findings = check_source(positive, path=path)
        assert rule_id in {f.rule for f in findings}, f"{rule_id} missed its fixture"

    @pytest.mark.parametrize("rule_id", sorted(FIXTURES))
    def test_true_negative(self, rule_id):
        path, _, negative = FIXTURES[rule_id]
        findings = check_source(negative, path=path)
        assert rule_id not in {f.rule for f in findings}, f"{rule_id} false positive"

    def test_every_registered_rule_has_a_fixture(self):
        assert {r.id for r in all_rules()} == set(FIXTURES)


class TestRuleDetails:
    def test_metric_registry_constructed_in_loop_flagged(self):
        src = "while pending:\n    registry = MetricsRegistry()\n"
        findings = check_source(src, path="src/repro/stream/x.py")
        assert "S015" in {f.rule for f in findings}

    def test_tracer_gauge_sample_in_loop_not_flagged(self):
        # Tracer.gauge(name, value) records a per-frame *sample*; only
        # registry-receiver instrument lookups are the S015 smell.
        src = "for fr in frames:\n    tr.gauge('server_detections', 3.0)\n"
        assert check_source(src, path="src/repro/stream/x.py") == []

    def test_metric_in_loop_out_of_scope_not_flagged(self):
        src = "for fr in frames:\n    metrics.counter('n').inc(1.0, at=0.0)\n"
        assert check_source(src, path="src/repro/edge/x.py") == []

    def test_legacy_np_random_flagged(self):
        findings = check_source("import numpy as np\nx = np.random.rand(3)\n", path="a.py")
        assert [f.rule for f in findings] == ["S001"]

    def test_seeded_generator_methods_not_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\nx = rng.normal(0, 1, 5)\n"
        assert check_source(src, path="a.py") == []

    def test_scope_limits_rule_to_directory(self):
        src = "import time\nstart = time.time()\n"
        assert check_source(src, path="src/repro/codec/x.py")
        assert check_source(src, path="src/repro/analysis/x.py") == []

    def test_kernel_internals_allowed_at_dispatch_sites_and_backends(self):
        # codec/ holds the dispatch seams and kernels/ the backends — the
        # two places that legitimately call the extracted internals.
        src = "def f(ev, args):\n    return _descend_reference(ev, *args)\n"
        assert check_source(src, path="src/repro/codec/motion.py") == []
        assert check_source(src, path="src/repro/kernels/sharded.py") == []
        assert "S017" in {f.rule for f in check_source(src, path="src/repro/fleet/x.py")}

    def test_kernel_evaluator_construction_flagged_outside_codec(self):
        src = "from repro.codec.motion import _BlockSadEvaluator\nev = _BlockSadEvaluator(c, r, 8, 16)\n"
        assert "S017" in {f.rule for f in check_source(src, path="src/repro/stream/x.py")}

    def test_qp_bounds_in_comparison_and_call(self):
        assert check_source("ok = qp > 60\n", path="a.py")[0].rule == "S004"
        assert check_source("enc.encode(f, base_qp=77)\n", path="a.py")[0].rule == "S004"
        assert check_source("ok = 0 <= qp <= 51\n", path="a.py") == []

    def test_bits_bytes_call_keyword(self):
        findings = check_source("Frame(size_bytes=total_bits)\n", path="a.py")
        assert [f.rule for f in findings] == ["S005"]
        assert check_source("Frame(size_bytes=int(total_bits / 8))\n", path="a.py") == []

    def test_print_allowed_in_cli_and_reporting(self):
        src = "print('table')\n"
        assert check_source(src, path="src/repro/cli.py") == []
        assert check_source(src, path="src/repro/experiments/reporting.py") == []
        assert check_source(src, path="src/repro/obs/export.py")

    def test_loop_alloc_dynamic_shape_not_flagged(self):
        src = (
            "import numpy as np\n"
            "def f(frames, n):\n"
            "    for fr in frames:\n"
            "        buf = np.zeros((n, fr.shape[1]), dtype=np.float64)\n"
        )
        assert check_source(src, path="src/repro/codec/x.py") == []

    def test_loop_alloc_shape_keyword_and_while(self):
        src = (
            "import numpy as np\n"
            "while True:\n"
            "    buf = np.empty(shape=(8, 8), dtype=np.int32)\n"
        )
        findings = check_source(src, path="src/repro/codec/x.py")
        assert [f.rule for f in findings] == ["S011"]

    def test_loop_alloc_nested_loops_report_once(self):
        src = (
            "import numpy as np\n"
            "for a in range(2):\n"
            "    for b in range(2):\n"
            "        buf = np.zeros(64, dtype=np.uint8)\n"
        )
        findings = check_source(src, path="src/repro/codec/x.py")
        assert [f.rule for f in findings] == ["S011"]

    def test_loop_alloc_noqa_suppresses(self):
        src = (
            "import numpy as np\n"
            "for a in range(2):\n"
            "    buf = np.zeros(64, dtype=np.uint8)  # repro: noqa[S011]\n"
        )
        assert check_source(src, path="src/repro/codec/x.py") == []

    def test_syntax_error_reported_not_raised(self):
        findings = check_source("def f(:\n", path="broken.py")
        assert len(findings) == 1
        assert findings[0].rule == "E999"


class TestNoqa:
    def test_rule_specific_noqa_suppresses(self):
        src = "import numpy as np\nrng = np.random.default_rng()  # repro: noqa[S001]\n"
        assert check_source(src, path="a.py") == []

    def test_bare_noqa_suppresses_everything(self):
        src = "import numpy as np\nrng = np.random.default_rng()  # repro: noqa\n"
        assert check_source(src, path="a.py") == []

    def test_noqa_for_other_rule_does_not_suppress(self):
        src = "import numpy as np\nrng = np.random.default_rng()  # repro: noqa[S007]\n"
        assert [f.rule for f in check_source(src, path="a.py")] == ["S001"]

    def test_noqa_only_covers_its_own_line(self):
        src = (
            "import numpy as np\n"
            "a = np.random.default_rng()  # repro: noqa[S001]\n"
            "b = np.random.default_rng()\n"
        )
        findings = check_source(src, path="a.py")
        assert [(f.rule, f.line) for f in findings] == [("S001", 3)]


class TestReporters:
    def _result(self):
        path, positive, _ = FIXTURES["S001"]
        from repro.check import CheckResult

        return CheckResult(findings=check_source(positive, path=path), files_checked=1)

    def test_text_format(self):
        text = render_text(self._result())
        assert "S001" in text
        assert text.endswith("1 finding in 1 files")

    def test_json_schema(self):
        doc = json.loads(render_json(self._result()))
        assert doc["version"] == 1
        assert doc["files_checked"] == 1
        assert doc["summary"]["total"] == 1
        assert doc["summary"]["by_rule"] == {"S001": 1}
        assert doc["summary"]["by_severity"] == {"error": 1}
        (finding,) = doc["findings"]
        assert set(finding) == {"rule", "severity", "path", "line", "col", "message"}
        assert finding["line"] == 2

    def test_rule_table_lists_all_rules(self):
        table = rule_table()
        for rule in all_rules():
            assert rule.id in table

    def test_findings_sorted_and_json_stable(self):
        f1 = Finding("S001", "error", "b.py", 1, 0, "x")
        f2 = Finding("S001", "error", "a.py", 9, 0, "x")
        from repro.check import CheckResult

        doc = json.loads(render_json(CheckResult(findings=sorted([f1, f2], key=lambda f: f.sort_key), files_checked=2)))
        assert [f["path"] for f in doc["findings"]] == ["a.py", "b.py"]


class TestShippedTree:
    def test_src_lints_clean(self):
        result = check_paths([REPO_ROOT / "src"])
        assert result.files_checked > 50
        assert result.findings == [], render_text(result)

    def test_tests_lint_clean(self):
        result = check_paths([REPO_ROOT / "tests"])
        assert result.findings == [], render_text(result)

    def test_benchmarks_lint_clean(self):
        result = check_paths([REPO_ROOT / "benchmarks"])
        assert result.findings == [], render_text(result)

    def test_examples_lint_clean(self):
        result = check_paths([REPO_ROOT / "examples"])
        assert result.findings == [], render_text(result)


class TestCliLint:
    def test_lint_src_exits_zero(self, capsys):
        from repro.cli import main

        rc = main(["lint", str(REPO_ROOT / "src")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 findings" in out

    def test_lint_json_output(self, capsys, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        rc = main(["lint", "--format", "json", str(bad)])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert doc["summary"]["by_rule"] == {"S001": 1}

    def test_list_rules(self, capsys):
        from repro.cli import main

        rc = main(["lint", "--list-rules"])
        assert rc == 0
        assert "S010" in capsys.readouterr().out
