#!/usr/bin/env python3
"""Quickstart: run DiVE end-to-end on one synthetic driving clip.

Generates a nuScenes-like urban clip, streams it through the DiVE agent
over a 2 Mbps (paper-scale) uplink to a simulated edge server, and prints
per-frame results plus the clip-level accuracy and response time.

Run:  python examples/quickstart.py
"""

from repro.core import DiVEScheme
from repro.experiments import ground_truth_for, run_scheme, scaled_bandwidth
from repro.network import constant_trace
from repro.world import nuscenes_like


def main() -> None:
    # 1. A synthetic driving clip (stands in for a nuScenes video).
    clip = nuscenes_like(seed=0, n_frames=36)
    print(f"clip {clip.name}: {clip.n_frames} frames @ {clip.fps:g} FPS, "
          f"{clip.intrinsics.width}x{clip.intrinsics.height}")

    # 2. An uplink at the paper's 2 Mbps operating point (scaled to the
    #    clip's resolution) and the evaluation ground truth (the detector's
    #    own output on raw frames, as in the paper).
    trace = constant_trace(scaled_bandwidth(2.0, clip))
    ground_truth = ground_truth_for(clip)

    # 3. Run the DiVE agent: motion-vector foreground extraction,
    #    differential encoding, adaptive bitrate, offline tracking.
    result = run_scheme(DiVEScheme(), clip, trace, ground_truth=ground_truth)

    print("\nper-frame results (first 12):")
    for frame in result.run.frames[:12]:
        print(
            f"  frame {frame.index:3d}  source={frame.source:8s} "
            f"detections={len(frame.detections):2d}  "
            f"bytes={frame.bytes_sent:6d}  response={frame.response_time * 1000:6.1f} ms"
        )

    print("\nclip-level metrics:")
    print(f"  mAP            : {result.map:.3f}")
    print(f"  AP (car)       : {result.ap['car']:.3f}")
    print(f"  AP (pedestrian): {result.ap['pedestrian']:.3f}")
    print(f"  response time  : {result.mean_response_time * 1000:.1f} ms")
    print(f"  uplink bytes   : {result.total_bytes / 1000:.1f} kB")


if __name__ == "__main__":
    main()
